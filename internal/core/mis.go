package core

import (
	"fmt"
	"math/rand/v2"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// FilterMode selects which received messages an algorithm keeps.
type FilterMode int

const (
	// FilterDetector keeps a message iff its sender is in the receiver's
	// link detector set (the Section 4 rule: "processes discard messages
	// received from a process not in its link detector set").
	FilterDetector FilterMode = iota + 1
	// FilterMutual keeps a message iff sender and receiver are in each
	// other's detector sets, i.e. they are H-neighbors. Used by the
	// Section 6 iterated MIS, whose messages are labeled with the
	// sender's detector set.
	FilterMutual
	// FilterNone keeps every message. Used by the Section 9 variant in
	// the classic radio model (G = G'), which needs no topology knowledge.
	FilterNone
)

// MISConfig configures one MIS process.
type MISConfig struct {
	// ID is this process's id in [1, n].
	ID int
	// N is the network size n, known to all processes.
	N int
	// Detector is the process's link detector set L. May be nil only with
	// FilterNone.
	Detector *detector.Set
	// Filter selects the reception filter.
	Filter FilterMode
	// LabelMessages attaches the detector set to outgoing messages
	// (required by FilterMutual receivers).
	LabelMessages bool
	// DisableReannounce is an ablation switch: when set, MIS members stop
	// broadcasting after their joining epoch's announcement phase (the
	// literal one-shot reading of Section 4). Under an adversarial
	// reach-set this loses the robustness that member re-announcement
	// provides, demonstrating why Section 9's "announce forever" rule is
	// load-bearing in the dual graph model.
	DisableReannounce bool
	// Params holds the constant factors.
	Params Params
	// Rng is the process's private randomness stream.
	Rng *rand.Rand
}

func (c *MISConfig) validate() error {
	if c.ID < 1 || c.ID > c.N {
		return fmt.Errorf("core: id %d outside [1,%d]", c.ID, c.N)
	}
	if c.Rng == nil {
		return fmt.Errorf("core: process %d has no RNG", c.ID)
	}
	if c.Detector == nil && c.Filter != FilterNone {
		return fmt.Errorf("core: process %d needs a detector for its filter mode", c.ID)
	}
	if c.Filter == 0 {
		c.Filter = FilterDetector
	}
	return c.Params.Validate()
}

// MISProcess is the Section 4 MIS algorithm with synchronous starts: the
// execution is divided into ℓ_E epochs; each epoch runs ceil(log₂ n)
// competition phases with doubling broadcast probabilities (1/n up to 1/2),
// followed by an announcement phase in which survivors join the MIS and
// announce it.
type MISProcess struct {
	cfg   MISConfig
	sched *misSchedule // shared immutable table (see tables.go)

	out         int
	misSet      *detector.Set // M_u: known MIS members (may include self)
	active      bool
	joinedEpoch int
	finished    bool

	// Schedule cursor: the engine drives Broadcast with consecutive round
	// numbers, so (epoch, phase, offsets) advance incrementally instead of
	// being re-derived with divisions every round. nextRound is the round
	// the cursor state describes; any other round triggers a resync.
	nextRound int
	epoch     int
	off       int // offset within the epoch
	phase     int // off / phaseLen (phases == announcement phase)
	offPhase  int // offset within the current phase

	// Outgoing messages are immutable and identical across rounds for a
	// fixed process, so they are built once and reused.
	contMsg *contenderMsg
	annMsg  *announceMsg

	// leapNext is the leap engine's pre-sampled heads round (-1 = none);
	// see BroadcastLeap. Unused by the exact engine.
	leapNext int
}

var _ sim.Process = (*MISProcess)(nil)

// NewMISProcess validates cfg and returns a ready process.
func NewMISProcess(cfg MISConfig) (*MISProcess, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &MISProcess{
		cfg:         cfg,
		sched:       misScheduleFor(cfg.N, cfg.Params),
		out:         sim.Undecided,
		misSet:      detector.NewSet(cfg.N),
		joinedEpoch: -1,
		leapNext:    -1,
	}, nil
}

// Rounds returns the algorithm's fixed total length in rounds.
func (p *MISProcess) Rounds() int { return p.sched.total }

// Output implements sim.Process.
func (p *MISProcess) Output() int { return p.out }

// Done implements sim.Process.
func (p *MISProcess) Done() bool { return p.finished }

// InMIS reports whether the process joined the MIS.
func (p *MISProcess) InMIS() bool { return p.out == 1 }

// MISSet returns M_u, the set of known MIS member ids (including the
// process's own id if it joined). The set is owned by the process.
func (p *MISProcess) MISSet() *detector.Set { return p.misSet }

// JoinedEpoch returns the epoch in which the process joined the MIS, or -1.
func (p *MISProcess) JoinedEpoch() int { return p.joinedEpoch }

// Masters returns the ids of known MIS members other than the process
// itself — for a covered process, the MIS neighbors that dominate it.
func (p *MISProcess) Masters() []int {
	var out []int
	for _, id := range p.misSet.IDs() {
		if id != p.cfg.ID {
			out = append(out, id)
		}
	}
	return out
}

// detLabel returns the detector label to attach to outgoing messages.
func (p *MISProcess) detLabel() *detector.Set {
	if p.cfg.LabelMessages {
		return p.cfg.Detector
	}
	return nil
}

// contender returns the process's (cached) competition message.
func (p *MISProcess) contender() *contenderMsg {
	if p.contMsg == nil {
		p.contMsg = newContender(p.cfg.N, p.cfg.ID, p.detLabel())
	}
	return p.contMsg
}

// announce returns the process's (cached) MIS announcement message.
func (p *MISProcess) announce() *announceMsg {
	if p.annMsg == nil {
		p.annMsg = newAnnounce(p.cfg.N, p.cfg.ID, p.detLabel())
	}
	return p.annMsg
}

// syncCursor re-derives the schedule cursor for an arbitrary round (used
// when Broadcast is not driven with consecutive rounds, e.g. after a resync).
func (p *MISProcess) syncCursor(round int) {
	p.epoch = round / p.sched.epochLen
	p.off = round % p.sched.epochLen
	p.phase = p.off / p.sched.phaseLen
	p.offPhase = p.off % p.sched.phaseLen
}

// advanceCursor moves the schedule cursor to the next round.
func (p *MISProcess) advanceCursor() {
	p.off++
	p.offPhase++
	if p.offPhase == p.sched.phaseLen {
		p.offPhase = 0
		p.phase++
	}
	if p.off == p.sched.epochLen {
		p.off = 0
		p.phase = 0
		p.epoch++
	}
}

// Broadcast implements sim.Process.
func (p *MISProcess) Broadcast(round int) sim.Message {
	m, _ := p.BroadcastSleep(round)
	return m
}

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver).
func (p *MISProcess) PassiveReceive() {}

// nextEpochStart returns the round at which the next epoch begins, assuming
// the cursor has been advanced past the current round.
func (p *MISProcess) nextEpochStart(round int) int {
	if p.off == 0 {
		return round + 1
	}
	return round + 1 + p.sched.epochLen - p.off
}

// BroadcastSleep implements sim.SleepBroadcaster: alongside the round's
// message it reports the earliest round at which the process might broadcast
// again. Knocked-out competitors sleep to their next epoch, covered (output
// 0) processes and one-shot members past their joining epoch sleep to the
// end of the schedule; in all those states Broadcast returns nil without
// consuming randomness, so skipping the calls leaves the execution
// bit-identical.
func (p *MISProcess) BroadcastSleep(round int) (sim.Message, int) {
	if round >= p.sched.total {
		p.finished = true
		return nil, round + 1
	}
	if round != p.nextRound {
		p.syncCursor(round)
	}
	p.nextRound = round + 1
	epoch, off, phase := p.epoch, p.off, p.phase
	p.advanceCursor()

	if off == 0 {
		// Epoch start: a process is active iff M_u contains neither its
		// own id nor a detector neighbor's id — equivalently, iff it has
		// not yet output 0 or 1.
		p.active = p.out == sim.Undecided
	}

	if phase < p.sched.phases {
		// Competition phase `phase`: broadcast probability 2^phase/n,
		// capped at 1/2 as in the paper's final phase.
		//
		// MIS members re-enter every later epoch's competition with the
		// same probability schedule, broadcasting announcements instead
		// of contender messages. This is the paper's Section 9 remedy
		// ("once a process joins the MIS, it must continue to broadcast
		// and announce this information") adapted to the epoch structure:
		// it lets a process whose announcement was jammed by the
		// adversary learn of an established neighbor before it could
		// erroneously join, while preserving the Lemma 4.3 contention
		// profile (members behave exactly like active competitors).
		if !p.active && p.joinedEpoch < 0 {
			if p.out == 0 {
				// Covered and decided: silent for good.
				return nil, p.sched.total
			}
			return nil, p.nextEpochStart(round)
		}
		if p.joinedEpoch >= 0 && p.cfg.DisableReannounce {
			// One-shot member: joining happens in an announcement
			// phase, so any later competition round is past the
			// joining epoch and the process is silent for good.
			return nil, p.sched.total
		}
		if p.cfg.Rng.Float64() < p.sched.probs[phase] {
			if p.joinedEpoch >= 0 {
				return p.announce(), round + 1
			}
			return p.contender(), round + 1
		}
		return nil, round + 1
	}

	// Announcement phase. An active survivor joins the MIS at the first
	// announcement round of its epoch; members announce with probability
	// 1/2 in the announcement phase of every epoch from then on.
	if p.active && p.joinedEpoch < 0 && p.out == sim.Undecided {
		p.join(epoch)
	}
	if p.joinedEpoch < 0 {
		// Not a member: silent through the rest of the announcement
		// phase (and beyond, if already covered).
		if p.out == 0 {
			return nil, p.sched.total
		}
		return nil, p.nextEpochStart(round)
	}
	if p.cfg.DisableReannounce && epoch != p.joinedEpoch {
		return nil, p.sched.total
	}
	if p.cfg.Rng.Float64() < 0.5 {
		return p.announce(), round + 1
	}
	return nil, round + 1
}

func (p *MISProcess) join(epoch int) {
	p.out = 1
	p.misSet.Add(p.cfg.ID)
	p.joinedEpoch = epoch
	p.active = false
}

// keep applies the configured reception filter.
func (p *MISProcess) keep(from int, label *detector.Set) bool {
	switch p.cfg.Filter {
	case FilterNone:
		return true
	case FilterMutual:
		return p.cfg.Detector.Contains(from) && label.Contains(p.cfg.ID)
	default:
		return p.cfg.Detector.Contains(from)
	}
}

// Receive implements sim.Process.
func (p *MISProcess) Receive(round int, msg sim.Message) {
	if msg == nil || msg.From() == p.cfg.ID {
		return
	}
	switch m := msg.(type) {
	case *contenderMsg:
		if !p.keep(m.from, m.det) {
			return
		}
		// A knocked-out process stays silent for the rest of the epoch.
		if p.active && p.joinedEpoch < 0 {
			p.active = false
		}
	case *announceMsg:
		if !p.keep(m.from, m.det) {
			return
		}
		p.misSet.Add(m.from)
		if p.out == sim.Undecided {
			p.out = 0
		}
		// An announcement also knocks the receiver out of the current
		// competition: a covered process must not proceed to join.
		if p.joinedEpoch < 0 {
			p.active = false
		}
	}
	_ = round
}
