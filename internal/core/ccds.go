package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// CCDSConfig configures one process of the Section 5 CCDS algorithm.
type CCDSConfig struct {
	// ID is this process's id in [1, n].
	ID int
	// N is the network size.
	N int
	// Delta is the (globally known) maximum degree Δ of the reliable
	// graph; the fixed search-epoch schedule depends on it.
	Delta int
	// B is the message size bound b in bits. It must be large enough to
	// carry at least one id beyond the fixed header overhead
	// (b = Ω(log n), as the paper assumes).
	B int
	// Detector is the process's 0-complete link detector set.
	Detector *detector.Set
	// Params holds the constant factors.
	Params Params
	// Rng is the process's private randomness stream.
	Rng *rand.Rand
}

// ccdsSchedule is the fixed global round layout of the CCDS algorithm: the
// MIS subroutine followed by ℓ_SE search epochs, each with three phases
// (banned-list broadcast, directed-decay nomination, exploration).
type ccdsSchedule struct {
	mis      *misSchedule
	logN     int
	bb       int // bounded-broadcast slot length ℓ_BB(δ)
	capIDs   int // ids per banned-list chunk
	chunks   int // chunk slots needed for Δ+2 ids
	ddLen    int // directed-decay phase length ℓ_DD
	ddPhases int // number of decay phases (= ceil(log₂ n))
	p1Len    int
	p2Len    int
	p3Len    int
	epochLen int
	epochs   int
	total    int
}

// messageOverheadBits is the reserved per-message header budget used when
// computing chunk capacity: type tag, sender id, list counts, and entry
// headers (origin, MIS id, sequence number and batching slack).
func messageOverheadBits(n int) int {
	return tagBits + 4*countBits + 6*idBits(n)
}

func newCCDSSchedule(n, delta, b int, p Params) (ccdsSchedule, error) {
	s := ccdsSchedule{mis: misScheduleFor(n, p), logN: log2Ceil(n)}
	overhead := messageOverheadBits(n)
	if b < overhead+idBits(n) {
		return s, fmt.Errorf("core: message bound b=%d bits cannot carry an id (needs >= %d); the paper assumes b = Ω(log n)", b, overhead+idBits(n))
	}
	s.capIDs = (b - overhead) / idBits(n)
	s.bb = bbLen(n, p, p.DeltaBB)
	// A banned-list delta or a neighbor-set response spans at most Δ+2 ids
	// (an MIS id plus its closed neighborhood).
	s.chunks = (delta + 2 + s.capIDs - 1) / s.capIDs
	s.ddLen = scaled(p.Decay, s.logN)
	s.ddPhases = s.logN
	s.p1Len = s.chunks * s.bb
	s.p2Len = s.ddPhases * (s.ddLen + s.bb)
	s.p3Len = (2 + 2*s.chunks) * s.bb
	s.epochLen = s.p1Len + s.p2Len + s.p3Len
	s.epochs = p.SearchEpochs
	s.total = s.mis.total + s.epochs*s.epochLen
	return s, nil
}

// CCDSRounds returns the fixed total running time of the Section 5 CCDS
// algorithm for the given parameters — O(Δ·log²n/b + log³n) rounds.
func CCDSRounds(n, delta, b int, p Params) (int, error) {
	s, err := ccdsScheduleFor(n, delta, b, p)
	if err != nil {
		return 0, err
	}
	return s.total, nil
}

// searchPhase identifies the position inside one search epoch.
type searchPhase int

const (
	phaseBanned  searchPhase = iota + 1 // phase 1: transmit B_u \ D_u
	phaseDecay                          // phase 2: directed-decay nominations
	phaseExplore                        // phase 3: explore one nomination
)

// locate resolves a search-relative round into (epoch, phase, offset).
func (s *ccdsSchedule) locate(t int) (epoch int, phase searchPhase, off int) {
	epoch = t / s.epochLen
	off = t % s.epochLen
	switch {
	case off < s.p1Len:
		return epoch, phaseBanned, off
	case off < s.p1Len+s.p2Len:
		return epoch, phaseDecay, off - s.p1Len
	default:
		return epoch, phaseExplore, off - s.p1Len - s.p2Len
	}
}

// decayNomination is one simulated covered process of directed-decay.
type decayNomination struct {
	dest      int // destination MIS process
	candidate int // nominated neighbor
	active    bool
}

// relayRecord buffers an exploration response awaiting relay to an origin.
type relayRecord struct {
	misID  int
	chunks map[int][]int // sequence -> ids
}

// CCDSProcess implements the Section 5 CCDS algorithm. It first runs the
// Section 4 MIS as a subroutine; MIS members join the CCDS, then the search
// epochs discover and connect MIS processes within 3 hops via banned-list
// guided exploration.
type CCDSProcess struct {
	cfg   CCDSConfig
	sched *ccdsSchedule // shared immutable table (see tables.go)
	mis   *MISProcess

	out      int
	finished bool

	searchInit bool
	inMIS      bool

	// MIS-node state.
	banned    *detector.Set // B_u
	delivered *detector.Set // D_u
	pending   [][]int       // chunked B_u \ D_u for the current epoch
	nomFrom   int           // nominator heard this epoch (0 = none)
	nomCand   int           // its candidate
	ddHeard   bool          // received a nomination in the current decay phase
	disc      *detector.Set // discovered MIS ids (instrumentation)

	// Covered-node state.
	masters  []int                 // MIS neighbors in G
	isMaster *detector.Set         // same, as a set
	replica  map[int]*detector.Set // B^v_u per master u
	primary  map[int]*detector.Set // P^v_u: epoch-1 copy (the master's neighborhood)
	noms     []decayNomination     // simulated covered processes this epoch
	selected map[int]int           // origin u -> target w (as nominator v)
	queried  map[int]bool          // origins to answer (as explored node w)
	relays   map[int]*relayRecord  // origin u -> buffered response (as v)

	// Schedule cursors: the engine drives Broadcast with consecutive
	// rounds, so the (epoch, phase, offset) triple and each phase's
	// slot/offset pair advance incrementally instead of being re-derived
	// with divisions every round. nextT == -1 forces an initial sync.
	nextT    int
	curEpoch int
	curPhase searchPhase
	curOff   int
	p1Slot   int // phase 1 bounded-broadcast slot
	p1In     int // offset within that slot
	ddPhaseC int // phase 2 decay phase
	ddIn     int // offset within decay phase + stop slot
	ddNext   int // expected next phase-2 offset (resync after sleeps)
	exSlot   int // phase 3 bounded-broadcast slot
	exIn     int // offset within that slot

	// Cached messages: a stop order is constant, and a banned-list chunk
	// is constant within its epoch.
	stopMsg     *stopMsg
	pendingMsgs []*bannedChunkMsg

	// arena recycles short-lived outgoing messages under the leap engine;
	// nil under the exact engine (see leapMsgs).
	arena *leapMsgs
}

var _ sim.Process = (*CCDSProcess)(nil)

// NewCCDSProcess validates the configuration and returns a ready process.
func NewCCDSProcess(cfg CCDSConfig) (*CCDSProcess, error) {
	if cfg.Delta < 1 {
		return nil, fmt.Errorf("core: CCDS needs the max degree Δ, got %d", cfg.Delta)
	}
	sched, err := ccdsScheduleFor(cfg.N, cfg.Delta, cfg.B, cfg.Params)
	if err != nil {
		return nil, err
	}
	misCfg := MISConfig{
		ID:       cfg.ID,
		N:        cfg.N,
		Detector: cfg.Detector,
		Filter:   FilterDetector,
		Params:   cfg.Params,
		Rng:      cfg.Rng,
	}
	inner, err := NewMISProcess(misCfg)
	if err != nil {
		return nil, err
	}
	return &CCDSProcess{
		cfg:   cfg,
		sched: sched,
		mis:   inner,
		out:   sim.Undecided,
		nextT: -1,
	}, nil
}

// Rounds returns the algorithm's fixed total length.
func (p *CCDSProcess) Rounds() int { return p.sched.total }

// Output implements sim.Process.
func (p *CCDSProcess) Output() int { return p.out }

// Done implements sim.Process.
func (p *CCDSProcess) Done() bool { return p.finished }

// InMIS reports whether the process joined the underlying MIS.
func (p *CCDSProcess) InMIS() bool { return p.inMIS }

// Discovered returns the set of MIS ids this MIS process discovered through
// exploration (empty for covered processes).
func (p *CCDSProcess) Discovered() []int {
	if p.disc == nil {
		return nil
	}
	return p.disc.IDs()
}

// initSearch snapshots the MIS outcome and initializes search state. Called
// at the first search round.
func (p *CCDSProcess) initSearch() {
	p.searchInit = true
	p.inMIS = p.mis.InMIS()
	if p.inMIS {
		// The banned list starts as the process's own id plus its link
		// detector set (its reliable neighborhood).
		p.banned = p.cfg.Detector.Clone()
		p.banned.Add(p.cfg.ID)
		p.delivered = detector.NewSet(p.cfg.N)
		p.disc = detector.NewSet(p.cfg.N)
		// MIS membership is CCDS membership.
		p.out = 1
		return
	}
	p.masters = p.mis.Masters()
	p.isMaster = detector.SetOf(p.cfg.N, p.masters...)
	p.replica = make(map[int]*detector.Set, len(p.masters))
	p.primary = make(map[int]*detector.Set, len(p.masters))
	for _, u := range p.masters {
		p.replica[u] = detector.NewSet(p.cfg.N)
		p.primary[u] = detector.NewSet(p.cfg.N)
	}
	p.selected = make(map[int]int)
	p.queried = make(map[int]bool)
	p.relays = make(map[int]*relayRecord)
}

// Broadcast implements sim.Process.
func (p *CCDSProcess) Broadcast(round int) sim.Message {
	m, _ := p.BroadcastSleep(round)
	return m
}

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver).
func (p *CCDSProcess) PassiveReceive() {}

// BroadcastSleep implements sim.SleepBroadcaster. The search schedule has
// long provably-silent stretches — covered processes during the banned-list
// phase, MIS processes during decay rounds, processes with nothing to
// nominate — in which Broadcast returns nil without consuming randomness;
// the reported wake round lets the engine skip those calls outright.
func (p *CCDSProcess) BroadcastSleep(round int) (sim.Message, int) {
	if round < p.sched.mis.total {
		// The MIS subroutine's sleep-forever is its own schedule end,
		// which is exactly where the search takes over.
		return p.mis.BroadcastSleep(round)
	}
	if round >= p.sched.total {
		p.finish()
		return nil, round + 1
	}
	if !p.searchInit {
		p.initSearch()
	}
	t := round - p.sched.mis.total
	if t != p.nextT {
		p.curEpoch, p.curPhase, p.curOff = p.sched.locate(t)
	}
	p.nextT = t + 1
	epoch, phase, off := p.curEpoch, p.curPhase, p.curOff
	p.advanceSearchCursor()
	if off == 0 && phase == phaseBanned {
		p.startEpoch(epoch)
	}
	var m sim.Message
	var rel int
	switch phase {
	case phaseBanned:
		m, rel = p.sendBanned(off)
	case phaseDecay:
		m, rel = p.sendDecay(off)
	default:
		m, rel = p.sendExplore(off)
	}
	return m, round + rel
}

// finish fixes the terminal output: any still-undecided process outputs 0.
func (p *CCDSProcess) finish() {
	if !p.finished {
		p.finished = true
		if p.out == sim.Undecided {
			p.out = 0
		}
	}
}

// startEpoch resets per-epoch state and computes the banned-list delta.
func (p *CCDSProcess) startEpoch(epoch int) {
	if p.inMIS {
		diff := p.banned.Diff(p.delivered)
		p.pending = chunkify(diff, p.sched.capIDs)
		p.pendingMsgs = make([]*bannedChunkMsg, len(p.pending))
		p.delivered = p.banned.Clone()
		p.nomFrom, p.nomCand = 0, 0
		p.ddHeard = false
		return
	}
	// Covered process: per-epoch exploration state. Nominations are built
	// later, at the start of phase 2, after phase 1 has delivered the
	// banned lists.
	clear(p.selected)
	clear(p.queried)
	clear(p.relays)
	_ = epoch
}

// startDecay builds this epoch's nominations: one simulated covered process
// per master with a non-banned neighbor to offer.
func (p *CCDSProcess) startDecay() {
	p.noms = p.noms[:0]
	for _, u := range p.masters {
		if cand, ok := p.nominationFor(u); ok {
			p.noms = append(p.noms, decayNomination{dest: u, candidate: cand, active: true})
		}
	}
}

// nominationFor returns the lowest-id detector neighbor of this process not
// present in its replica of master u's banned list.
func (p *CCDSProcess) nominationFor(u int) (int, bool) {
	rep := p.replica[u]
	for _, w := range p.cfg.Detector.IDs() {
		if !rep.Contains(w) {
			return w, true
		}
	}
	return 0, false
}

// chunkify splits ids into chunks of at most capIDs entries.
func chunkify(ids []int, capIDs int) [][]int {
	if len(ids) == 0 {
		return nil
	}
	sort.Ints(ids)
	var out [][]int
	for len(ids) > 0 {
		k := capIDs
		if k > len(ids) {
			k = len(ids)
		}
		out = append(out, ids[:k])
		ids = ids[k:]
	}
	return out
}

// advanceSearchCursor moves the search-phase cursor to the next round.
func (p *CCDSProcess) advanceSearchCursor() {
	p.curOff++
	switch p.curPhase {
	case phaseBanned:
		if p.curOff == p.sched.p1Len {
			p.curPhase, p.curOff = phaseDecay, 0
		}
	case phaseDecay:
		if p.curOff == p.sched.p2Len {
			p.curPhase, p.curOff = phaseExplore, 0
		}
	default:
		if p.curOff == p.sched.p3Len {
			p.curPhase, p.curOff = phaseBanned, 0
			p.curEpoch++
		}
	}
}

// stop returns the process's (cached) constant stop-order message.
func (p *CCDSProcess) stop() *stopMsg {
	if p.stopMsg == nil {
		p.stopMsg = newStop(p.cfg.N, p.cfg.ID)
	}
	return p.stopMsg
}

// sendBanned implements phase 1: MIS processes bounded-broadcast their
// banned-list delta, one chunk per slot, with probability 1/2 per round.
// sendBanned also reports the number of rounds (>= 1) for which the process
// is guaranteed silent and randomness-free, starting at this one. Covered
// processes sleep through the whole phase; an MIS process whose chunks are
// exhausted sleeps to the first stop slot of phase 2.
func (p *CCDSProcess) sendBanned(off int) (sim.Message, int) {
	if off == 0 {
		p.p1Slot, p.p1In = 0, 0
	}
	slot := p.p1Slot
	if p.p1In++; p.p1In == p.sched.bb {
		p.p1In, p.p1Slot = 0, slot+1
	}
	if !p.inMIS {
		return nil, p.sched.p1Len - off
	}
	if slot >= len(p.pending) {
		return nil, p.sched.p1Len - off + p.sched.ddLen
	}
	if p.cfg.Rng.Float64() >= 0.5 {
		return nil, 1
	}
	if p.pendingMsgs[slot] == nil {
		p.pendingMsgs[slot] = newBannedChunk(p.cfg.N, p.cfg.ID, slot, p.pending[slot], nil)
	}
	return p.pendingMsgs[slot], 1
}

// sendDecay implements phase 2: covered processes run directed-decay to
// deliver one nomination to each neighboring MIS process, and MIS processes
// issue stop orders between decay phases.
// sendDecay also reports the guaranteed-silent stretch (>= 1 rounds): MIS
// processes sleep through decay rounds to the next stop slot (and through
// stop slots they did not hear a nomination for), covered processes with
// nothing to nominate sleep to phase 3, and covered processes skip the stop
// slots between decay phases. Sleeps may land mid-phase, so the slot cursor
// resyncs on a non-consecutive offset.
func (p *CCDSProcess) sendDecay(off int) (sim.Message, int) {
	phaseLen := p.sched.ddLen + p.sched.bb
	switch {
	case off == 0:
		if !p.inMIS {
			p.startDecay()
		}
		p.ddPhaseC, p.ddIn = 0, 0
	case off != p.ddNext:
		p.ddPhaseC, p.ddIn = off/phaseLen, off%phaseLen
	}
	p.ddNext = off + 1
	ddPhase, inPhase := p.ddPhaseC, p.ddIn
	if p.ddIn++; p.ddIn == phaseLen {
		p.ddIn, p.ddPhaseC = 0, ddPhase+1
	}

	if inPhase < p.sched.ddLen {
		if p.inMIS {
			// Decay rounds are listen-only for MIS processes.
			return nil, p.sched.ddLen - inPhase
		}
		if !p.hasActiveNoms() {
			// Nothing to nominate for the rest of the phase: stop
			// orders only deactivate nominations, never revive them.
			return nil, p.sched.p2Len - off
		}
		// Decay rounds: each active simulated covered process broadcasts
		// with probability 2^i/n (precomputed, capped at 1/2); concurrent
		// firings are combined into a single batched message.
		prob := p.sched.mis.probs[ddPhase]
		var entries []nomination
		if p.arena != nil {
			// Leap engine: reuse the arena's entries buffer (receivers
			// copy nomination values, never the slice).
			entries = p.arena.noms[:0]
		}
		for i := range p.noms {
			if p.noms[i].active && p.cfg.Rng.Float64() < prob {
				entries = append(entries, nomination{
					Dest:      p.noms[i].dest,
					Candidate: p.noms[i].candidate,
				})
			}
		}
		if p.arena != nil {
			p.arena.noms = entries
		}
		if len(entries) == 0 {
			return nil, 1
		}
		if p.arena != nil {
			return p.arena.newNominate(p.cfg.N, p.cfg.ID, entries), 1
		}
		return newNominate(p.cfg.N, p.cfg.ID, entries), 1
	}
	// Stop slot: an MIS process that heard a nomination during this decay
	// phase bounded-broadcasts a stop order.
	if p.inMIS {
		if !p.ddHeard {
			// Silent until the next stop slot (nominations cannot
			// arrive during a stop slot), or until phase 3.
			rel := phaseLen - inPhase + p.sched.ddLen
			if rest := p.sched.p2Len - off; rest < rel {
				rel = rest
			}
			return nil, rel
		}
		fire := p.cfg.Rng.Float64() < 0.5
		if inPhase == phaseLen-1 {
			// Reset at the end of the slot for the next decay phase.
			p.ddHeard = false
		}
		if fire {
			return p.stop(), 1
		}
		return nil, 1
	}
	// Covered processes are silent in stop slots; wake at the next decay
	// round (or phase 3 after the last slot).
	if p.hasActiveNoms() {
		return nil, phaseLen - inPhase
	}
	return nil, p.sched.p2Len - off
}

// hasActiveNoms reports whether any simulated covered process of this epoch
// is still nominating.
func (p *CCDSProcess) hasActiveNoms() bool {
	for i := range p.noms {
		if p.noms[i].active {
			return true
		}
	}
	return false
}

// sendExplore implements phase 3: select, query, respond, relay — each a
// bounded-broadcast slot (the respond and relay steps span one slot per
// chunk).
// sendExplore draws its slot coin every round for every process, so there
// is never a sleep window inside phase 3.
func (p *CCDSProcess) sendExplore(off int) (sim.Message, int) {
	if off == 0 {
		p.exSlot, p.exIn = 0, 0
	}
	slot := p.exSlot
	if p.exIn++; p.exIn == p.sched.bb {
		p.exIn, p.exSlot = 0, slot+1
	}
	coin := p.cfg.Rng.Float64() < 0.5
	switch {
	case slot == 0: // select
		if p.inMIS && p.nomFrom != 0 && coin {
			return newSelect(p.cfg.N, p.cfg.ID, p.nomFrom, p.nomCand), 1
		}
	case slot == 1: // query
		if !p.inMIS && len(p.selected) > 0 && coin {
			return p.buildQuery(), 1
		}
	case slot < 2+p.sched.chunks: // respond
		if !p.inMIS && len(p.queried) > 0 && coin {
			return p.buildRespond(slot - 2), 1
		}
	default: // relay
		if !p.inMIS && len(p.relays) > 0 && coin {
			return p.buildRelay(slot - 2 - p.sched.chunks), 1
		}
	}
	return nil, 1
}

// buildQuery batches the exploration requests this nominator received,
// dropping overflow origins (they retry next epoch) to respect b.
func (p *CCDSProcess) buildQuery() sim.Message {
	origins := sortedKeys(p.selected)
	var entries []queryEntry
	// A query with k entries encodes tag + sender + count + 2k ids; the
	// bound is enforced arithmetically instead of building probe messages.
	base := tagBits + idBits(p.cfg.N) + countBits
	for _, u := range origins {
		if base+(len(entries)+1)*2*idBits(p.cfg.N) > p.cfg.B {
			break
		}
		entries = append(entries, queryEntry{Origin: u, Target: p.selected[u]})
	}
	if len(entries) == 0 {
		return nil
	}
	return newQuery(p.cfg.N, p.cfg.ID, entries)
}

// responseContent returns the MIS id and the id set this explored process
// reports: itself and its neighborhood when it is in the MIS, otherwise its
// lowest-id MIS neighbor x together with the learned replica of x's
// neighborhood (P^w_x).
func (p *CCDSProcess) responseContent() (int, []int, bool) {
	if p.inMIS {
		// Unreachable in practice (an MIS process is always in banned
		// lists and never explored) but kept for safety.
		return p.cfg.ID, append(p.cfg.Detector.IDs(), p.cfg.ID), true
	}
	if len(p.masters) == 0 {
		return 0, nil, false
	}
	x := p.masters[0]
	ids := p.primary[x].Clone()
	ids.Add(x)
	return x, ids.IDs(), true
}

// buildRespond emits chunk seq of the exploration answer for every querying
// origin that fits in b bits.
func (p *CCDSProcess) buildRespond(seq int) sim.Message {
	misID, ids, ok := p.responseContent()
	if !ok {
		return nil
	}
	chunks := chunkify(ids, p.sched.capIDs)
	if seq >= len(chunks) {
		return nil
	}
	var entries []respondEntry
	// Entry sizes are summed arithmetically (see entryBits) instead of
	// building probe messages per appended entry.
	bits := tagBits + idBits(p.cfg.N) + countBits
	perEntry := 3*idBits(p.cfg.N) + countBits + len(chunks[seq])*idBits(p.cfg.N)
	for _, u := range sortedBoolKeys(p.queried) {
		if bits+perEntry > p.cfg.B {
			break
		}
		bits += perEntry
		entries = append(entries, respondEntry{Origin: u, MISID: misID, Seq: seq, IDs: chunks[seq]})
	}
	if len(entries) == 0 {
		return nil
	}
	return newRespond(p.cfg.N, p.cfg.ID, entries)
}

// buildRelay forwards buffered response chunks to their origins.
func (p *CCDSProcess) buildRelay(seq int) sim.Message {
	var entries []respondEntry
	bits := tagBits + idBits(p.cfg.N) + countBits
	for _, u := range sortedRelayKeys(p.relays) {
		rec := p.relays[u]
		ids, ok := rec.chunks[seq]
		if !ok {
			continue
		}
		eb := 3*idBits(p.cfg.N) + countBits + len(ids)*idBits(p.cfg.N)
		if bits+eb > p.cfg.B {
			break
		}
		bits += eb
		entries = append(entries, respondEntry{Origin: u, MISID: rec.misID, Seq: seq, IDs: ids})
	}
	if len(entries) == 0 {
		return nil
	}
	return newRelay(p.cfg.N, p.cfg.ID, entries)
}

// Receive implements sim.Process.
func (p *CCDSProcess) Receive(round int, msg sim.Message) {
	if round < p.sched.mis.total {
		p.mis.Receive(round, msg)
		return
	}
	if msg == nil || msg.From() == p.cfg.ID || !p.searchInit {
		return
	}
	// Section 5 assumes 0-complete detectors; all traffic is filtered to
	// reliable neighbors.
	if !p.cfg.Detector.Contains(msg.From()) {
		return
	}
	switch m := msg.(type) {
	case *bannedChunkMsg:
		p.onBannedChunk(round, m)
	case *nominateMsg:
		p.onNominate(m)
	case *stopMsg:
		p.onStop(m)
	case *selectMsg:
		p.onSelect(m)
	case *queryMsg:
		p.onQuery(m)
	case *respondMsg:
		p.onRespond(m)
	case *relayMsg:
		p.onRelay(m)
	}
}

func (p *CCDSProcess) onBannedChunk(round int, m *bannedChunkMsg) {
	if p.inMIS {
		return
	}
	rep := p.replica[m.from]
	if rep == nil {
		// The sender is a reliable MIS neighbor whose announcement was
		// missed; adopt it as a master lazily.
		rep = detector.NewSet(p.cfg.N)
		p.replica[m.from] = rep
		p.primary[m.from] = detector.NewSet(p.cfg.N)
		p.masters = append(p.masters, m.from)
		sort.Ints(p.masters)
		p.isMaster.Add(m.from)
	}
	for _, id := range m.IDs {
		rep.Add(id)
	}
	t := round - p.sched.mis.total
	if epoch, _, _ := p.sched.locate(t); epoch == 0 {
		for _, id := range m.IDs {
			p.primary[m.from].Add(id)
		}
	}
}

func (p *CCDSProcess) onNominate(m *nominateMsg) {
	if !p.inMIS {
		return
	}
	for _, e := range m.Entries {
		if e.Dest == p.cfg.ID && e.Candidate != p.cfg.ID {
			p.ddHeard = true
			if p.nomFrom == 0 {
				p.nomFrom = m.from
				p.nomCand = e.Candidate
			}
			return
		}
	}
}

func (p *CCDSProcess) onStop(m *stopMsg) {
	if p.inMIS {
		return
	}
	for i := range p.noms {
		if p.noms[i].dest == m.from {
			p.noms[i].active = false
		}
	}
}

func (p *CCDSProcess) onSelect(m *selectMsg) {
	if p.inMIS || m.V != p.cfg.ID {
		return
	}
	p.selected[m.from] = m.W
	p.joinCCDS()
}

func (p *CCDSProcess) onQuery(m *queryMsg) {
	if p.inMIS {
		return
	}
	for _, e := range m.Entries {
		if e.Target == p.cfg.ID {
			p.queried[e.Origin] = true
			p.joinCCDS()
		}
	}
}

func (p *CCDSProcess) onRespond(m *respondMsg) {
	if p.inMIS {
		return
	}
	// Only the nominator that forwarded the query buffers the response.
	for _, e := range m.Entries {
		if w, ok := p.selected[e.Origin]; ok && w == m.from {
			rec := p.relays[e.Origin]
			if rec == nil {
				rec = &relayRecord{misID: e.MISID, chunks: make(map[int][]int)}
				p.relays[e.Origin] = rec
			}
			rec.chunks[e.Seq] = e.IDs
		}
	}
}

func (p *CCDSProcess) onRelay(m *relayMsg) {
	if !p.inMIS {
		return
	}
	for _, e := range m.Entries {
		if e.Origin != p.cfg.ID {
			continue
		}
		if e.MISID != p.cfg.ID && !p.disc.Contains(e.MISID) {
			p.disc.Add(e.MISID)
		}
		p.banned.Add(e.MISID)
		for _, id := range e.IDs {
			p.banned.Add(id)
		}
	}
}

// joinCCDS marks a covered process as a CCDS relay.
func (p *CCDSProcess) joinCCDS() {
	if p.out != 1 {
		p.out = 1
	}
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedBoolKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedRelayKeys(m map[int]*relayRecord) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
