package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

func tauProcs(t *testing.T, net interface {
	N() int
	Delta() int
}, asg *dualgraph.Assignment, det *detector.Detector, tau int, seed uint64) []sim.Process {
	t.Helper()
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		p, err := NewTauCCDSProcess(CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: 1 << 16,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(seed, uint64(v+1))),
		}, tau)
		if err != nil {
			t.Fatal(err)
		}
		procs[v] = p
	}
	return procs
}

func TestTauCCDSRejectsNegativeTau(t *testing.T) {
	cfg := CCDSConfig{
		ID: 1, N: 4, Delta: 2, B: 512,
		Detector: detector.NewSet(4), Params: DefaultParams(),
		Rng: rand.New(rand.NewPCG(1, 1)),
	}
	if _, err := NewTauCCDSProcess(cfg, -1); err == nil {
		t.Error("negative tau accepted")
	}
}

// TestTauIterationsRunSequentially: with τ=1 the process runs exactly two
// MIS iterations before the connect procedure, and the total length matches
// the exported calculator.
func TestTauIterationsRunSequentially(t *testing.T) {
	cfg := CCDSConfig{
		ID: 1, N: 8, Delta: 3, B: 1 << 12,
		Detector: detector.SetOf(8, 2), Params: DefaultParams(),
		Rng: rand.New(rand.NewPCG(2, 2)),
	}
	p, err := NewTauCCDSProcess(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TauCCDSRounds(8, 3, 1<<12, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds() != want {
		t.Errorf("Rounds() = %d, calculator says %d", p.Rounds(), want)
	}
}

// TestTauWinnerSilentInLaterIterations: a process that wins iteration 0
// never broadcasts contenders again during iteration 1.
func TestTauWinnerSilentInLaterIterations(t *testing.T) {
	// A lone process always wins iteration 0 (no competition).
	cfg := CCDSConfig{
		ID: 1, N: 8, Delta: 3, B: 1 << 12,
		Detector: detector.NewSet(8), Params: DefaultParams(),
		Rng: rand.New(rand.NewPCG(3, 3)),
	}
	p, err := NewTauCCDSProcess(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	misTotal := newMISSchedule(8, DefaultParams()).total
	for r := 0; r < misTotal; r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
	}
	if !p.Dominator() || p.WonIteration() != 0 {
		t.Fatalf("lone process should win iteration 0, won=%d", p.WonIteration())
	}
	for r := misTotal; r < 2*misTotal; r++ {
		if msg := p.Broadcast(r); msg != nil {
			t.Fatalf("iteration-0 winner broadcast during iteration 1 at round %d", r)
		}
		p.Receive(r, nil)
	}
}

// TestTauCliqueProducesTauPlusOneDominators: on a clique, each iteration
// elects exactly one winner, so τ+1 iterations produce τ+1 dominators.
func TestTauCliqueProducesTauPlusOneDominators(t *testing.T) {
	for _, tau := range []int{0, 1, 2} {
		net, err := gen.Clique(10)
		if err != nil {
			t.Fatal(err)
		}
		asg := dualgraph.IdentityAssignment(net.N())
		det := detector.Complete(net, asg)
		procs := tauProcs(t, net, asg, det, tau, uint64(tau+5))
		r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		dominators := 0
		for _, p := range procs {
			if p.(*TauCCDSProcess).Dominator() {
				dominators++
			}
		}
		if dominators != tau+1 {
			t.Errorf("tau=%d: %d dominators on clique, want %d", tau, dominators, tau+1)
		}
	}
}

// TestTauOutputsAllDecided: at schedule end, every process has output 0/1
// and dominators output 1.
func TestTauOutputsAllDecided(t *testing.T) {
	net, err := gen.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	det := detector.Complete(net, asg)
	procs := tauProcs(t, net, asg, det, 1, 9)
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for v, p := range procs {
		tp := p.(*TauCCDSProcess)
		if p.Output() == sim.Undecided {
			t.Errorf("node %d undecided", v)
		}
		if tp.Dominator() && p.Output() != 1 {
			t.Errorf("dominator %d output %d", v, p.Output())
		}
	}
}
