package core

import (
	"dualradio/internal/detector"
)

// tagBits is the per-message type-tag cost charged by the honest bit
// accounting. Every message additionally pays idBits(n) for its sender id
// and idBits(n) per carried id.
const tagBits = 4

// countBits is charged per variable-length list in a message (an 8-bit
// element count).
const countBits = 8

// header carries the fields common to all protocol messages.
type header struct {
	from int
	bits int
	// det is the sender's link detector set label used by the Section 6
	// iterated MIS ("processes label their messages with their local link
	// detector sets"). nil when unlabeled; when present its size is
	// included in bits.
	det *detector.Set
}

// From implements sim.Message.
func (h header) From() int { return h.from }

// BitSize implements sim.Message.
func (h header) BitSize() int { return h.bits }

// DetLabel returns the sender's detector set label, or nil.
func (h header) DetLabel() *detector.Set { return h.det }

func newHeader(n, from int, payloadBits int, det *detector.Set) header {
	b := tagBits + idBits(n) + payloadBits
	if det != nil {
		b += countBits + det.Len()*idBits(n)
	}
	return header{from: from, bits: b, det: det}
}

// contenderMsg is the Section 4 competition message.
type contenderMsg struct{ header }

func newContender(n, from int, det *detector.Set) *contenderMsg {
	return &contenderMsg{newHeader(n, from, 0, det)}
}

// announceMsg declares MIS membership (the "MIS message" of Section 4).
type announceMsg struct{ header }

func newAnnounce(n, from int, det *detector.Set) *announceMsg {
	return &announceMsg{newHeader(n, from, 0, det)}
}

// bannedChunkMsg carries one chunk of an MIS node's banned list during
// phase 1 of a CCDS search epoch. Seq orders chunks within the epoch.
type bannedChunkMsg struct {
	header
	Seq int
	IDs []int
}

func newBannedChunk(n, from, seq int, ids []int, det *detector.Set) *bannedChunkMsg {
	return &bannedChunkMsg{
		header: newHeader(n, from, countBits*2+len(ids)*idBits(n), det),
		Seq:    seq,
		IDs:    ids,
	}
}

// nomination is one entry of a directed-decay nomination: the sender
// proposes Candidate for exploration by MIS process Dest.
type nomination struct {
	Dest      int
	Candidate int
}

// nominateMsg batches the sender's simulated covered processes that fired
// this round (directed-decay combines concurrent simulated broadcasts).
type nominateMsg struct {
	header
	Entries []nomination
}

func newNominate(n, from int, entries []nomination) *nominateMsg {
	return &nominateMsg{
		header:  newHeader(n, from, countBits+len(entries)*2*idBits(n), nil),
		Entries: entries,
	}
}

// stopMsg is a directed-decay stop order from an MIS process to its covered
// set.
type stopMsg struct{ header }

func newStop(n, from int) *stopMsg {
	return &stopMsg{newHeader(n, from, 0, nil)}
}

// selectMsg tells nominator V that MIS process From selected its candidate W
// for exploration (CCDS search phase 3, step 1).
type selectMsg struct {
	header
	V int
	W int
}

func newSelect(n, from, v, w int) *selectMsg {
	return &selectMsg{header: newHeader(n, from, 2*idBits(n), nil), V: v, W: w}
}

// queryEntry asks Target to describe itself on behalf of MIS process Origin.
type queryEntry struct {
	Origin int
	Target int
}

// queryMsg is step 2 of search phase 3: the nominator forwards exploration
// requests to its candidates (batched, one entry per selecting MIS process).
type queryMsg struct {
	header
	Entries []queryEntry
}

func newQuery(n, from int, entries []queryEntry) *queryMsg {
	return &queryMsg{
		header:  newHeader(n, from, countBits+len(entries)*2*idBits(n), nil),
		Entries: entries,
	}
}

// respondEntry is one chunk of an exploration answer destined for Origin:
// MISID is the discovered MIS process (the responder itself, or its chosen
// MIS neighbor), and IDs is chunk Seq of that MIS process's neighbor ids.
type respondEntry struct {
	Origin int
	MISID  int
	Seq    int
	IDs    []int
}

func entryBits(n int, entries []respondEntry) int {
	b := countBits
	for _, e := range entries {
		b += 3*idBits(n) + countBits + len(e.IDs)*idBits(n)
	}
	return b
}

// respondMsg is step 3 of search phase 3: the explored process describes the
// discovered MIS node (batched per origin).
type respondMsg struct {
	header
	Entries []respondEntry
}

func newRespond(n, from int, entries []respondEntry) *respondMsg {
	return &respondMsg{
		header:  newHeader(n, from, entryBits(n, entries), nil),
		Entries: entries,
	}
}

// relayMsg is step 4 of search phase 3: the nominator relays the response
// back to the selecting MIS process.
type relayMsg struct {
	header
	Entries []respondEntry
}

func newRelay(n, from int, entries []respondEntry) *relayMsg {
	return &relayMsg{
		header:  newHeader(n, from, entryBits(n, entries), nil),
		Entries: entries,
	}
}

// annAMsg is phase A of the Section 6 enumeration connect: a covered process
// announces its id and the dominators covering it ("its id and master").
type annAMsg struct {
	header
	Masters []int
}

func newAnnA(n, from int, masters []int, det *detector.Set) *annAMsg {
	return &annAMsg{
		header:  newHeader(n, from, countBits+len(masters)*idBits(n), det),
		Masters: masters,
	}
}

// domWitness records that dominator Dom is reachable through Witness.
type domWitness struct {
	Dom     int
	Witness int
}

// annBMsg is phase B of the enumeration connect: a covered process announces
// every dominator it has heard of, each with a witness neighbor on the path.
type annBMsg struct {
	header
	Entries []domWitness
}

func newAnnB(n, from int, entries []domWitness, det *detector.Set) *annBMsg {
	return &annBMsg{
		header:  newHeader(n, from, countBits+len(entries)*2*idBits(n), det),
		Entries: entries,
	}
}

// pathChoice is a dominator's selected connecting path to dominator Dom via
// covered relays V (its own neighbor) and W (V's neighbor; 0 when the path
// has two hops).
type pathChoice struct {
	Dom int
	V   int
	W   int
}

// selPathsMsg is phase C of the enumeration connect: a dominator announces
// its selected connecting paths so the relays can join the CCDS.
type selPathsMsg struct {
	header
	Paths []pathChoice
}

func newSelPaths(n, from int, paths []pathChoice, det *detector.Set) *selPathsMsg {
	return &selPathsMsg{
		header: newHeader(n, from, countBits+len(paths)*3*idBits(n), det),
		Paths:  paths,
	}
}

// relaySelMsg is phase D of the enumeration connect: a first-hop relay
// forwards the selection to the second-hop relays.
type relaySelMsg struct {
	header
	Ws []int
}

func newRelaySel(n, from int, ws []int, det *detector.Set) *relaySelMsg {
	return &relaySelMsg{
		header: newHeader(n, from, countBits+len(ws)*idBits(n), det),
		Ws:     ws,
	}
}
