package core

import (
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	if err := FastParams().Validate(); err != nil {
		t.Errorf("fast params invalid: %v", err)
	}
}

func TestParamsValidationRejects(t *testing.T) {
	bad := []Params{
		{},
		func() Params { p := DefaultParams(); p.Epochs = 0; return p }(),
		func() Params { p := DefaultParams(); p.Phase = -1; return p }(),
		func() Params { p := DefaultParams(); p.DeltaBB = 30; return p }(),
		func() Params { p := DefaultParams(); p.SearchEpochs = 0; return p }(),
		func() Params { p := DefaultParams(); p.MaxMasters = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestIDBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 0: 1}
	for n, want := range cases {
		if got := idBits(n); got != want {
			t.Errorf("idBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMISScheduleShape(t *testing.T) {
	p := DefaultParams()
	s := newMISSchedule(256, p)
	if s.logN != 8 {
		t.Errorf("logN = %d", s.logN)
	}
	if s.phases != s.logN {
		t.Errorf("competition phases = %d, want logN", s.phases)
	}
	if s.epochLen != (s.phases+1)*s.phaseLen {
		t.Error("epoch length inconsistent")
	}
	if s.total != s.epochs*s.epochLen {
		t.Error("total inconsistent")
	}
}

// TestMISScheduleCubicGrowth verifies the schedule is Θ(log³ n): the ratio
// total/log³n stays within a constant band across sizes.
func TestMISScheduleCubicGrowth(t *testing.T) {
	p := DefaultParams()
	var ratios []float64
	for _, n := range []int{64, 256, 1024, 4096, 1 << 14} {
		s := newMISSchedule(n, p)
		l := float64(s.logN)
		ratios = append(ratios, float64(s.total)/(l*l*l))
	}
	for _, r := range ratios {
		if r < ratios[0]/2 || r > ratios[0]*2 {
			t.Errorf("rounds/log³n ratios drift: %v", ratios)
		}
	}
}

func TestCCDSScheduleTermStructure(t *testing.T) {
	p := DefaultParams()
	// Large b: rounds must be independent of Δ (the Δ·log²n/b term
	// collapses to one chunk).
	big1, err := CCDSRounds(1024, 32, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	big2, err := CCDSRounds(1024, 1024, 1<<20, p)
	if err != nil {
		t.Fatal(err)
	}
	if big1 != big2 {
		t.Errorf("large-b rounds depend on Δ: %d vs %d", big1, big2)
	}
	// Small b: rounds must grow with Δ.
	small1, err := CCDSRounds(1024, 32, 256, p)
	if err != nil {
		t.Fatal(err)
	}
	small2, err := CCDSRounds(1024, 1024, 256, p)
	if err != nil {
		t.Fatal(err)
	}
	if small2 <= small1 {
		t.Errorf("small-b rounds do not grow with Δ: %d vs %d", small1, small2)
	}
	// Rounds shrink (weakly) as b grows.
	prev := 1 << 62
	for _, b := range []int{200, 400, 1600, 1 << 16} {
		r, err := CCDSRounds(512, 256, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Errorf("rounds increased with larger b: %d -> %d at b=%d", prev, r, b)
		}
		prev = r
	}
}

func TestCCDSRoundsRejectsTinyB(t *testing.T) {
	if _, err := CCDSRounds(1024, 32, 8, DefaultParams()); err == nil {
		t.Error("b too small for one id should be rejected")
	}
}

func TestBaselineRoundsLinearInDelta(t *testing.T) {
	p := DefaultParams()
	r1, err := BaselineCCDSRounds(1024, 64, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BaselineCCDSRounds(1024, 640, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	// The enumeration phases dominate: 10x Δ should grow rounds by ~>3x.
	if float64(r2) < 3*float64(r1)/2 {
		t.Errorf("baseline rounds not growing with Δ: %d -> %d", r1, r2)
	}
	if _, err := TauCCDSRounds(128, 16, 4096, p, -1); err == nil {
		t.Error("negative tau accepted")
	}
	tau0, err := TauCCDSRounds(128, 16, 4096, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tau2, err := TauCCDSRounds(128, 16, 4096, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	mis := newMISSchedule(128, p).total
	if tau2-tau0 != 2*mis {
		t.Errorf("each extra tau iteration should add one MIS run: %d vs %d", tau2-tau0, 2*mis)
	}
}

// TestChunkifyProperties: chunkify partitions the input into bounded chunks
// preserving all elements in sorted order.
func TestChunkifyProperties(t *testing.T) {
	f := func(raw []uint16, capRaw uint8) bool {
		capIDs := 1 + int(capRaw%16)
		ids := make([]int, len(raw))
		for i, x := range raw {
			ids[i] = int(x)
		}
		chunks := chunkify(append([]int(nil), ids...), capIDs)
		var flat []int
		for _, c := range chunks {
			if len(c) == 0 || len(c) > capIDs {
				return false
			}
			flat = append(flat, c...)
		}
		if len(flat) != len(ids) {
			return false
		}
		for i := 1; i < len(flat); i++ {
			if flat[i-1] > flat[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if chunkify(nil, 4) != nil {
		t.Error("empty input should produce no chunks")
	}
}

func TestScaled(t *testing.T) {
	if scaled(0.1, 1) != 1 {
		t.Error("scaled must be at least 1")
	}
	if scaled(2.5, 4) != 10 {
		t.Errorf("scaled(2.5,4) = %d", scaled(2.5, 4))
	}
}
