package core

import (
	"fmt"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// TauCCDSProcess is the Section 6 CCDS algorithm for τ-complete link
// detectors, τ = O(1). It runs τ+1 sequential iterations of the Section 4
// MIS algorithm — with every message labeled by the sender's detector set
// and receptions filtered to mutual detector membership, so maximality is
// defined over H — and then connects the resulting dominating structure with
// the neighbor-enumeration procedure, for O(Δ·polylog n) rounds in total.
//
// A process that wins any iteration becomes a dominator and stays silent in
// later iterations; a process that never wins has received MIS messages from
// τ+1 distinct H-neighbors, at least one of which must be a genuine
// G-neighbor (Lemma 6.1).
type TauCCDSProcess struct {
	cfg  CCDSConfig
	tau  int
	enum *enumConnect

	iterations int
	misTotal   int
	total      int

	inner      *MISProcess
	wonIter    int
	mastersAcc *detector.Set

	out   int
	done  bool
	begun bool
}

var _ sim.Process = (*TauCCDSProcess)(nil)

// NewTauCCDSProcess returns a process for the given mistake bound τ >= 0.
func NewTauCCDSProcess(cfg CCDSConfig, tau int) (*TauCCDSProcess, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: tau must be non-negative, got %d", tau)
	}
	p := &TauCCDSProcess{
		cfg:        cfg,
		tau:        tau,
		iterations: tau + 1,
		wonIter:    -1,
		mastersAcc: detector.NewSet(cfg.N),
		out:        sim.Undecided,
	}
	var err error
	p.enum, err = newEnumConnect(cfg.ID, cfg.N, cfg.B, cfg.Delta, cfg.Detector,
		cfg.Params, cfg.Rng, true, p.join)
	if err != nil {
		return nil, err
	}
	p.misTotal = misScheduleFor(cfg.N, cfg.Params).total
	p.total = p.iterations*p.misTotal + p.enum.Rounds()
	// Validate the MIS configuration once up front.
	if _, err := p.newIterationMIS(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *TauCCDSProcess) join() { p.out = 1 }

func (p *TauCCDSProcess) newIterationMIS() (*MISProcess, error) {
	return NewMISProcess(MISConfig{
		ID:            p.cfg.ID,
		N:             p.cfg.N,
		Detector:      p.cfg.Detector,
		Filter:        FilterMutual,
		LabelMessages: true,
		Params:        p.cfg.Params,
		Rng:           p.cfg.Rng,
	})
}

// Rounds returns the fixed total running time.
func (p *TauCCDSProcess) Rounds() int { return p.total }

// Output implements sim.Process.
func (p *TauCCDSProcess) Output() int { return p.out }

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver).
func (p *TauCCDSProcess) PassiveReceive() {}

// Done implements sim.Process.
func (p *TauCCDSProcess) Done() bool { return p.done }

// Dominator reports whether the process won some MIS iteration.
func (p *TauCCDSProcess) Dominator() bool { return p.wonIter >= 0 }

// WonIteration returns the iteration index the process won, or -1.
func (p *TauCCDSProcess) WonIteration() int { return p.wonIter }

// harvestMasters folds the finished iteration's observations into the
// accumulated master set.
func (p *TauCCDSProcess) harvestMasters() {
	if p.inner == nil {
		return
	}
	for _, id := range p.inner.Masters() {
		p.mastersAcc.Add(id)
	}
}

// Broadcast implements sim.Process.
func (p *TauCCDSProcess) Broadcast(round int) sim.Message {
	misPhase := p.iterations * p.misTotal
	if round < misPhase {
		local := round % p.misTotal
		inner := p.iterationInner(local)
		if inner == nil {
			return nil
		}
		msg := inner.Broadcast(local)
		p.noteWin(round)
		return msg
	}
	if !p.enterSearch(round) {
		return nil
	}
	return p.enum.Broadcast(round - misPhase)
}

// BroadcastSleep implements sim.SleepBroadcaster. During the iterated MIS
// phase, a participant's sleep windows come from the inner MIS instance
// (clamped to the iteration by construction: MIS wake rounds never exceed
// its schedule end) and an established dominator sleeps out each remaining
// iteration whole; the enumeration schedule then reports its own windows
// (see enumConnect.BroadcastSleep for the coin pre-consumption that keeps
// skipped executions bit-identical).
func (p *TauCCDSProcess) BroadcastSleep(round int) (sim.Message, int) {
	misPhase := p.iterations * p.misTotal
	if round < misPhase {
		local := round % p.misTotal
		inner := p.iterationInner(local)
		if inner == nil {
			// Silent (and randomness-free) until the next iteration
			// boundary, where fresh bookkeeping runs.
			return nil, round - local + p.misTotal
		}
		msg, wake := inner.BroadcastSleep(local)
		p.noteWin(round)
		return msg, round - local + wake
	}
	if !p.enterSearch(round) {
		return nil, round + 1
	}
	msg, wake := p.enum.BroadcastSleep(round - misPhase)
	return msg, misPhase + wake
}

// iterationInner runs the iteration-boundary bookkeeping (harvest the
// finished iteration, hand participants a fresh MIS instance) and returns
// the current iteration's inner process, nil for established dominators.
func (p *TauCCDSProcess) iterationInner(local int) *MISProcess {
	if local == 0 {
		p.harvestMasters()
		p.inner = nil
		if p.wonIter < 0 {
			// Participants get a fresh MIS instance; winners of
			// earlier iterations stay silent. The config was validated
			// up front, so construction cannot fail here.
			inner, err := p.newIterationMIS()
			if err == nil {
				p.inner = inner
			}
		}
	}
	return p.inner
}

// noteWin records the first iteration whose inner MIS the process joined.
func (p *TauCCDSProcess) noteWin(round int) {
	if p.wonIter < 0 && p.inner.InMIS() {
		p.wonIter = round / p.misTotal
		p.out = 1
	}
}

// enterSearch finalizes the MIS phase on the first enumeration round; it
// reports false once the schedule has ended (fixing the terminal output).
func (p *TauCCDSProcess) enterSearch(round int) bool {
	if round >= p.total {
		p.done = true
		if p.out == sim.Undecided {
			p.out = 0
		}
		return false
	}
	if !p.begun {
		p.begun = true
		p.harvestMasters()
		p.inner = nil
		p.enum.start(p.wonIter >= 0, p.mastersAcc.IDs())
	}
	return true
}

// Receive implements sim.Process.
func (p *TauCCDSProcess) Receive(round int, msg sim.Message) {
	misPhase := p.iterations * p.misTotal
	if round < misPhase {
		if p.inner != nil {
			p.inner.Receive(round%p.misTotal, msg)
		}
		return
	}
	if p.begun {
		p.enum.Receive(round-misPhase, msg)
	}
}
