package core

import (
	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// AsyncMISProcess is the Section 9 MIS variant for asynchronous starts.
// Each process runs its own locally-timed epochs: a listening phase of
// Θ(log² n) silent rounds, then the usual doubling competition phases, then
// an announcement phase. Any kept message received while competing or
// listening knocks the process back to a fresh epoch (restarting with a new
// listening phase). A process that joins the MIS announces with probability
// 1/2 for the remainder of the execution, so late wakers still learn of it.
//
// With FilterNone the algorithm uses no topology information at all and is
// correct in the classic radio network model (G = G'); with FilterDetector
// and a 0-complete detector it is correct in the dual graph model
// (Theorem 9.4).
type AsyncMISProcess struct {
	cfg       MISConfig
	wake      int
	sched     *misSchedule // shared immutable table (see tables.go)
	listenLen int
	epochLen  int

	awake      bool
	epochStart int // global round at which the current epoch began
	out        int
	joined     bool
	misSet     *detector.Set
	epochs     int // epochs started, for instrumentation
	finished   bool
	decided    int // local round at which the output was fixed, -1 before

	// Cached immutable outgoing messages (identical every round).
	contMsg *contenderMsg
	annMsg  *announceMsg

	// Leap engine state (unused by the exact engine): the pre-sampled heads
	// round (-1 = none) and the epochStart it was sampled under — a
	// knock-back moves epochStart, invalidating the sample.
	leapNext       int
	leapEpochStart int
}

var _ sim.Process = (*AsyncMISProcess)(nil)

// NewAsyncMISProcess returns a process that wakes at global round wakeRound.
func NewAsyncMISProcess(cfg MISConfig, wakeRound int) (*AsyncMISProcess, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := misScheduleFor(cfg.N, cfg.Params)
	listen := scaled(cfg.Params.Listen, s.logN*s.logN)
	return &AsyncMISProcess{
		cfg:       cfg,
		wake:      wakeRound,
		sched:     s,
		listenLen: listen,
		epochLen:  listen + (s.phases+1)*s.phaseLen,
		out:       sim.Undecided,
		misSet:    detector.NewSet(cfg.N),
		decided:   -1,
		leapNext:  -1,
	}, nil
}

// Output implements sim.Process.
func (p *AsyncMISProcess) Output() int { return p.out }

// Done implements sim.Process. An MIS member is never done — it announces
// forever, as Section 9 requires — so executions are bounded by the runner's
// round cap or an all-decided observer.
func (p *AsyncMISProcess) Done() bool { return p.finished }

// InMIS reports whether the process joined the MIS.
func (p *AsyncMISProcess) InMIS() bool { return p.joined }

// MISSet returns M_u (owned by the process).
func (p *AsyncMISProcess) MISSet() *detector.Set { return p.misSet }

// EpochsStarted returns how many epochs the process has begun, a measure of
// how often it was knocked back.
func (p *AsyncMISProcess) EpochsStarted() int { return p.epochs }

// WakeRound returns the global round at which the process wakes.
func (p *AsyncMISProcess) WakeRound() int { return p.wake }

// DecisionLatency returns the number of local rounds (since waking) the
// process needed to fix its output, or -1 while undecided. Theorem 9.4
// bounds this by O(log³ n) w.h.p.
func (p *AsyncMISProcess) DecisionLatency() int { return p.decided }

// Broadcast implements sim.Process.
func (p *AsyncMISProcess) Broadcast(round int) sim.Message {
	m, _ := p.BroadcastSleep(round)
	return m
}

// BroadcastSleep implements sim.SleepBroadcaster: an unwoken process sleeps
// to its wake-up round and a listening process to the end of its listening
// phase — in both states Broadcast returns nil without touching state or
// randomness. A knock-back during the sleep only restarts the listening
// phase, which keeps the process silent even longer, so an early declared
// wake is always safe (the process simply declares a new sleep).
func (p *AsyncMISProcess) BroadcastSleep(round int) (sim.Message, int) {
	if round < p.wake {
		return nil, p.wake
	}
	if !p.awake {
		p.awake = true
		p.epochStart = round
		p.epochs = 1
	}
	if p.out == 0 {
		return nil, round + 1
	}
	if p.joined {
		// Permanent announcement duty.
		if p.cfg.Rng.Float64() < 0.5 {
			return p.announce(), round + 1
		}
		return nil, round + 1
	}
	pos := round - p.epochStart
	if pos < p.listenLen {
		// Listening: silent at least until the phase ends. The local
		// clock is derived from the global round, so it keeps running
		// while the engine skips the sleeping process.
		return nil, round + p.listenLen - pos
	}
	pos -= p.listenLen
	phase := pos / p.sched.phaseLen
	if phase < p.sched.phases {
		if p.cfg.Rng.Float64() < p.sched.probs[phase] {
			return p.contender(), round + 1
		}
		return nil, round + 1
	}
	// Reaching the announcement phase means the process survived every
	// competition phase of this epoch: it joins the MIS.
	p.joined = true
	p.out = 1
	p.misSet.Add(p.cfg.ID)
	p.decided = round - p.wake
	if p.cfg.Rng.Float64() < 0.5 {
		return p.announce(), round + 1
	}
	return nil, round + 1
}

func (p *AsyncMISProcess) detLabelAsync() *detector.Set {
	if p.cfg.LabelMessages {
		return p.cfg.Detector
	}
	return nil
}

// contender returns the process's (cached) competition message.
func (p *AsyncMISProcess) contender() *contenderMsg {
	if p.contMsg == nil {
		p.contMsg = newContender(p.cfg.N, p.cfg.ID, p.detLabelAsync())
	}
	return p.contMsg
}

// announce returns the process's (cached) MIS announcement message.
func (p *AsyncMISProcess) announce() *announceMsg {
	if p.annMsg == nil {
		p.annMsg = newAnnounce(p.cfg.N, p.cfg.ID, p.detLabelAsync())
	}
	return p.annMsg
}

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver): the local epoch clock is derived from
// the global round, so silent rounds need no callback.
func (p *AsyncMISProcess) PassiveReceive() {}

// Receive implements sim.Process.
func (p *AsyncMISProcess) Receive(round int, msg sim.Message) {
	if !p.awake {
		return
	}
	if msg == nil || msg.From() == p.cfg.ID || p.joined || p.out == 0 {
		return
	}
	switch m := msg.(type) {
	case *contenderMsg:
		if !p.keepAsync(m.from, m.det) {
			return
		}
		p.restartEpoch(round)
	case *announceMsg:
		if !p.keepAsync(m.from, m.det) {
			return
		}
		p.misSet.Add(m.from)
		p.out = 0
		p.decided = round - p.wake
		p.finished = true
	}
}

func (p *AsyncMISProcess) keepAsync(from int, label *detector.Set) bool {
	switch p.cfg.Filter {
	case FilterNone:
		return true
	case FilterMutual:
		return p.cfg.Detector.Contains(from) && label.Contains(p.cfg.ID)
	default:
		return p.cfg.Detector.Contains(from)
	}
}

// restartEpoch knocks the process back to the start of a fresh epoch,
// beginning with a new listening phase in the next round.
func (p *AsyncMISProcess) restartEpoch(round int) {
	p.epochStart = round + 1
	p.epochs++
}
