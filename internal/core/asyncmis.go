package core

import (
	"math"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// AsyncMISProcess is the Section 9 MIS variant for asynchronous starts.
// Each process runs its own locally-timed epochs: a listening phase of
// Θ(log² n) silent rounds, then the usual doubling competition phases, then
// an announcement phase. Any kept message received while competing or
// listening knocks the process back to a fresh epoch (restarting with a new
// listening phase). A process that joins the MIS announces with probability
// 1/2 for the remainder of the execution, so late wakers still learn of it.
//
// With FilterNone the algorithm uses no topology information at all and is
// correct in the classic radio network model (G = G'); with FilterDetector
// and a 0-complete detector it is correct in the dual graph model
// (Theorem 9.4).
type AsyncMISProcess struct {
	cfg       MISConfig
	wake      int
	sched     misSchedule
	listenLen int
	epochLen  int

	awake    bool
	epochPos int
	out      int
	joined   bool
	misSet   *detector.Set
	epochs   int // epochs started, for instrumentation
	finished bool
	decided  int // local round at which the output was fixed, -1 before
}

var _ sim.Process = (*AsyncMISProcess)(nil)

// NewAsyncMISProcess returns a process that wakes at global round wakeRound.
func NewAsyncMISProcess(cfg MISConfig, wakeRound int) (*AsyncMISProcess, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := newMISSchedule(cfg.N, cfg.Params)
	listen := scaled(cfg.Params.Listen, s.logN*s.logN)
	return &AsyncMISProcess{
		cfg:       cfg,
		wake:      wakeRound,
		sched:     s,
		listenLen: listen,
		epochLen:  listen + (s.phases+1)*s.phaseLen,
		out:       sim.Undecided,
		misSet:    detector.NewSet(cfg.N),
		decided:   -1,
	}, nil
}

// Output implements sim.Process.
func (p *AsyncMISProcess) Output() int { return p.out }

// Done implements sim.Process. An MIS member is never done — it announces
// forever, as Section 9 requires — so executions are bounded by the runner's
// round cap or an all-decided observer.
func (p *AsyncMISProcess) Done() bool { return p.finished }

// InMIS reports whether the process joined the MIS.
func (p *AsyncMISProcess) InMIS() bool { return p.joined }

// MISSet returns M_u (owned by the process).
func (p *AsyncMISProcess) MISSet() *detector.Set { return p.misSet }

// EpochsStarted returns how many epochs the process has begun, a measure of
// how often it was knocked back.
func (p *AsyncMISProcess) EpochsStarted() int { return p.epochs }

// WakeRound returns the global round at which the process wakes.
func (p *AsyncMISProcess) WakeRound() int { return p.wake }

// DecisionLatency returns the number of local rounds (since waking) the
// process needed to fix its output, or -1 while undecided. Theorem 9.4
// bounds this by O(log³ n) w.h.p.
func (p *AsyncMISProcess) DecisionLatency() int { return p.decided }

// Broadcast implements sim.Process.
func (p *AsyncMISProcess) Broadcast(round int) sim.Message {
	if round < p.wake {
		return nil
	}
	if !p.awake {
		p.awake = true
		p.epochPos = 0
		p.epochs = 1
	}
	if p.out == 0 {
		return nil
	}
	if p.joined {
		// Permanent announcement duty.
		if p.cfg.Rng.Float64() < 0.5 {
			return newAnnounce(p.cfg.N, p.cfg.ID, p.detLabelAsync())
		}
		return nil
	}
	pos := p.epochPos
	if pos < p.listenLen {
		return nil // listening phase: sending probability 0
	}
	pos -= p.listenLen
	phase := pos / p.sched.phaseLen
	if phase < p.sched.phases {
		prob := math.Ldexp(1/float64(p.cfg.N), phase)
		if prob > 0.5 {
			prob = 0.5
		}
		if p.cfg.Rng.Float64() < prob {
			return newContender(p.cfg.N, p.cfg.ID, p.detLabelAsync())
		}
		return nil
	}
	// Reaching the announcement phase means the process survived every
	// competition phase of this epoch: it joins the MIS.
	p.joined = true
	p.out = 1
	p.misSet.Add(p.cfg.ID)
	p.decided = round - p.wake
	if p.cfg.Rng.Float64() < 0.5 {
		return newAnnounce(p.cfg.N, p.cfg.ID, p.detLabelAsync())
	}
	return nil
}

func (p *AsyncMISProcess) detLabelAsync() *detector.Set {
	if p.cfg.LabelMessages {
		return p.cfg.Detector
	}
	return nil
}

// Receive implements sim.Process.
func (p *AsyncMISProcess) Receive(round int, msg sim.Message) {
	if !p.awake {
		return
	}
	defer func() { p.epochPos++ }()
	if msg == nil || msg.From() == p.cfg.ID || p.joined || p.out == 0 {
		return
	}
	switch m := msg.(type) {
	case *contenderMsg:
		if !p.keepAsync(m.from, m.det) {
			return
		}
		p.restartEpoch()
	case *announceMsg:
		if !p.keepAsync(m.from, m.det) {
			return
		}
		p.misSet.Add(m.from)
		p.out = 0
		p.decided = round - p.wake
		p.finished = true
	}
}

func (p *AsyncMISProcess) keepAsync(from int, label *detector.Set) bool {
	switch p.cfg.Filter {
	case FilterNone:
		return true
	case FilterMutual:
		return p.cfg.Detector.Contains(from) && label.Contains(p.cfg.ID)
	default:
		return p.cfg.Detector.Contains(from)
	}
}

// restartEpoch knocks the process back to the start of a fresh epoch,
// beginning with a new listening phase.
func (p *AsyncMISProcess) restartEpoch() {
	p.epochPos = -1 // incremented to 0 by the deferred update
	p.epochs++
}
