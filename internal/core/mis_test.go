package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

func misProc(t *testing.T, id, n int, det *detector.Set, seed uint64, filter FilterMode) *MISProcess {
	t.Helper()
	p, err := NewMISProcess(MISConfig{
		ID:       id,
		N:        n,
		Detector: det,
		Filter:   filter,
		Params:   DefaultParams(),
		Rng:      rand.New(rand.NewPCG(seed, uint64(id))),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMISConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	base := MISConfig{ID: 1, N: 4, Detector: detector.NewSet(4), Params: DefaultParams(), Rng: rng}

	bad := base
	bad.ID = 0
	if _, err := NewMISProcess(bad); err == nil {
		t.Error("id 0 accepted")
	}
	bad = base
	bad.ID = 5
	if _, err := NewMISProcess(bad); err == nil {
		t.Error("id > n accepted")
	}
	bad = base
	bad.Rng = nil
	if _, err := NewMISProcess(bad); err == nil {
		t.Error("nil rng accepted")
	}
	bad = base
	bad.Detector = nil
	bad.Filter = FilterDetector
	if _, err := NewMISProcess(bad); err == nil {
		t.Error("nil detector with detector filter accepted")
	}
	ok := base
	ok.Detector = nil
	ok.Filter = FilterNone
	if _, err := NewMISProcess(ok); err != nil {
		t.Errorf("FilterNone without detector rejected: %v", err)
	}
}

// TestMISCliqueExactlyOneWinner: on a clique, independence forces exactly
// one MIS member and maximality forces at least one.
func TestMISCliqueExactlyOneWinner(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		net, err := gen.Clique(12)
		if err != nil {
			t.Fatal(err)
		}
		asg := dualgraph.IdentityAssignment(net.N())
		det := detector.Complete(net, asg)
		procs := make([]sim.Process, net.N())
		for v := 0; v < net.N(); v++ {
			procs[v] = misProc(t, asg.ID(v), net.N(), det.Set(v), seed, FilterDetector)
		}
		r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		winners := 0
		for _, p := range procs {
			if p.(*MISProcess).InMIS() {
				winners++
			}
		}
		if winners != 1 {
			t.Errorf("seed %d: clique MIS has %d winners, want 1", seed, winners)
		}
	}
}

// TestMISLineIndependence: on a path, MIS members are never adjacent and
// every node is decided.
func TestMISLineIndependence(t *testing.T) {
	net, err := gen.Line(20)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		procs[v] = misProc(t, asg.ID(v), net.N(), det.Set(v), 7, FilterDetector)
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v+1 < net.N(); v++ {
		if procs[v].Output() == 1 && procs[v+1].Output() == 1 {
			t.Errorf("adjacent nodes %d,%d both in MIS", v, v+1)
		}
	}
	for v, p := range procs {
		if p.Output() == sim.Undecided {
			t.Errorf("node %d undecided", v)
		}
	}
}

// TestMISMessageFiltering: contender messages from processes outside the
// detector set must be ignored.
func TestMISMessageFiltering(t *testing.T) {
	det := detector.SetOf(8, 2) // only process 2 is a reliable neighbor
	p := misProc(t, 1, 8, det, 1, FilterDetector)
	// Drive one broadcast so internal epoch state initializes.
	p.Broadcast(0)
	p.Receive(0, newContender(8, 5, nil)) // not in detector: ignored
	if p.Output() != sim.Undecided {
		t.Error("filtered contender changed state")
	}
	p.Receive(0, newAnnounce(8, 5, nil)) // not in detector: ignored
	if p.MISSet().Len() != 0 {
		t.Error("filtered announce recorded")
	}
	p.Receive(1, newAnnounce(8, 2, nil)) // reliable neighbor announce
	if p.Output() != 0 {
		t.Errorf("announce from reliable neighbor should decide 0, got %d", p.Output())
	}
	if !p.MISSet().Contains(2) {
		t.Error("announce sender missing from M_u")
	}
}

// TestMISMutualFilter: with FilterMutual, a message is kept only when the
// label proves the receiver is in the sender's detector set.
func TestMISMutualFilter(t *testing.T) {
	det := detector.SetOf(8, 2)
	p, err := NewMISProcess(MISConfig{
		ID: 1, N: 8, Detector: det, Filter: FilterMutual,
		LabelMessages: true, Params: DefaultParams(),
		Rng: rand.New(rand.NewPCG(1, 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Broadcast(0)
	// Sender 2 is in L_1 but its label does not include id 1: discard.
	p.Receive(0, newAnnounce(8, 2, detector.SetOf(8, 3)))
	if p.Output() != sim.Undecided {
		t.Error("non-mutual announce accepted")
	}
	// Mutual: kept.
	p.Receive(1, newAnnounce(8, 2, detector.SetOf(8, 1)))
	if p.Output() != 0 {
		t.Error("mutual announce rejected")
	}
}

// TestMISKnockoutSilences: a contender from a reliable neighbor knocks an
// active process out for the epoch (it stops broadcasting).
func TestMISKnockoutSilences(t *testing.T) {
	det := detector.SetOf(4, 2)
	p := misProc(t, 1, 4, det, 3, FilterDetector)
	p.Broadcast(0)
	p.Receive(0, newContender(4, 2, nil))
	// Drain the rest of the epoch: a knocked-out process must stay silent
	// through the end of the current epoch (it may re-activate later).
	s := newMISSchedule(4, DefaultParams())
	for r := 1; r < s.epochLen; r++ {
		if msg := p.Broadcast(r); msg != nil {
			t.Fatalf("knocked-out process broadcast at round %d", r)
		}
		p.Receive(r, nil)
	}
}

// TestMISDoneAfterSchedule: the process reports Done once the fixed schedule
// has elapsed.
func TestMISDoneAfterSchedule(t *testing.T) {
	det := detector.NewSet(4)
	p := misProc(t, 1, 4, det, 4, FilterDetector)
	total := p.Rounds()
	for r := 0; r < total; r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
	}
	if p.Done() {
		t.Error("done before schedule end")
	}
	p.Broadcast(total)
	if !p.Done() {
		t.Error("not done after schedule end")
	}
	// A lone process must have joined the MIS (maximality).
	if !p.InMIS() {
		t.Error("isolated process should join the MIS")
	}
}

// TestMastersExcludesSelf: Masters never includes the process's own id.
func TestMastersExcludesSelf(t *testing.T) {
	det := detector.SetOf(4, 2)
	p := misProc(t, 1, 4, det, 5, FilterDetector)
	p.Broadcast(0)
	p.Receive(0, newAnnounce(4, 2, nil))
	for r := 1; r <= p.Rounds(); r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
	}
	masters := p.Masters()
	if len(masters) != 1 || masters[0] != 2 {
		t.Errorf("masters = %v", masters)
	}
}
