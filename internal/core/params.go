// Package core implements the algorithms of "Structuring Unreliable Radio
// Networks" (Censor-Hillel, Gilbert, Kuhn, Lynch, Newport; PODC 2011):
//
//   - the O(log³ n) Maximal Independent Set algorithm of Section 4,
//   - the O(Δ·log²n/b + log³n) CCDS algorithm of Section 5 with its
//     bounded-broadcast and directed-decay subroutines and banned-list
//     path finding,
//   - the O(Δ·polylog n) CCDS algorithm of Section 6 for τ-complete link
//     detectors with τ = O(1),
//   - the continuous CCDS of Section 8 for dynamic link detectors, and
//   - the asynchronous-start MIS variant of Section 9 for the classic
//     radio network model.
//
// The paper's Θ(log n) phase lengths hide constants chosen "sufficiently
// large"; Params exposes those constants so tests and experiments can
// calibrate them, with defaults that achieve high empirical success rates
// at laptop scales.
package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Params collects the tunable constant factors of the paper's Θ(·) bounds.
type Params struct {
	// Epochs is the number of MIS epochs, as a multiple of log₂ n
	// (the paper's ℓ_E = Θ(log n)).
	Epochs float64
	// Phase is the length of each competition/announcement phase, as a
	// multiple of log₂ n (the paper's ℓ_P = Θ(log n)).
	Phase float64
	// Decay is the length of each directed-decay phase, as a multiple of
	// log₂ n (the paper's ℓ_DD = Θ(log n)).
	Decay float64
	// BB scales bounded-broadcast slots: a call with contention bound δ
	// runs for ceil(BB · 2^δ · log₂ n) rounds (the paper's
	// ℓ_BB(δ) = Θ(2^δ log n)).
	BB float64
	// DeltaBB is the contention bound δ passed to bounded-broadcast during
	// CCDS search epochs. The paper sets it to the constant I_{d+1}; the
	// default is calibrated to observed MIS densities.
	DeltaBB int
	// SearchEpochs is the number of CCDS search epochs (the paper's
	// ℓ_SE = I_{3d} = O(1)).
	SearchEpochs int
	// Listen is the length of the listening phase in the asynchronous-start
	// MIS variant, as a multiple of log₂² n (Section 9 uses Θ(log² n)).
	Listen float64
	// MaxMasters caps the number of dominator ids a covered process
	// reports per message in the Section 6 connect procedure. The paper
	// bounds nearby dominators by a constant (Lemma 6.1(b)); this is that
	// constant's engineering stand-in.
	MaxMasters int
}

// DefaultParams returns constants calibrated for w.h.p. success at the
// scales exercised by the tests and benchmarks (n up to a few thousand).
func DefaultParams() Params {
	return Params{
		Epochs:       3,
		Phase:        4,
		Decay:        4,
		BB:           2,
		DeltaBB:      2,
		SearchEpochs: 8,
		Listen:       1,
		MaxMasters:   24,
	}
}

// FastParams returns smaller constants for quick smoke tests where
// occasional failures are acceptable.
func FastParams() Params {
	p := DefaultParams()
	p.Epochs = 2
	p.Phase = 2
	p.Decay = 2
	p.BB = 1
	p.SearchEpochs = 5
	return p
}

// Validate reports the first nonsensical parameter.
func (p Params) Validate() error {
	switch {
	case p.Epochs <= 0, p.Phase <= 0, p.Decay <= 0, p.BB <= 0, p.Listen <= 0:
		return fmt.Errorf("core: non-positive length factor in %+v", p)
	case p.DeltaBB < 0 || p.DeltaBB > 16:
		return fmt.Errorf("core: contention bound δ=%d out of range [0,16]", p.DeltaBB)
	case p.SearchEpochs < 1:
		return fmt.Errorf("core: at least one search epoch required, got %d", p.SearchEpochs)
	case p.MaxMasters < 1:
		return fmt.Errorf("core: MaxMasters must be positive, got %d", p.MaxMasters)
	}
	return nil
}

// log2Ceil returns ceil(log₂ n), at least 1.
func log2Ceil(n int) int {
	if n <= 2 {
		return 1
	}
	l := bits.Len(uint(n - 1))
	return l
}

// idBits returns the number of bits needed to encode a process id in [1, n].
func idBits(n int) int {
	if n < 1 {
		return 1
	}
	return bits.Len(uint(n))
}

// scaled returns ceil(f · x) as an int, at least 1.
func scaled(f float64, x int) int {
	v := int(math.Ceil(f * float64(x)))
	if v < 1 {
		return 1
	}
	return v
}

// misSchedule captures the fixed round layout of the Section 4 MIS
// algorithm: ℓ_E epochs, each consisting of ceil(log₂ n) competition phases
// followed by one announcement phase, all of length ℓ_P.
type misSchedule struct {
	logN     int       // ceil(log₂ n)
	phaseLen int       // ℓ_P
	phases   int       // competition phases per epoch (= logN)
	epochLen int       // (phases + 1) · phaseLen
	epochs   int       // ℓ_E
	total    int       // epochs · epochLen
	probs    []float64 // per-phase broadcast probability min(2^i/n, 1/2)
}

func newMISSchedule(n int, p Params) misSchedule {
	s := misSchedule{logN: log2Ceil(n)}
	s.phaseLen = scaled(p.Phase, s.logN)
	s.phases = s.logN
	s.epochLen = (s.phases + 1) * s.phaseLen
	s.epochs = scaled(p.Epochs, s.logN)
	s.total = s.epochs * s.epochLen
	// Precompute the doubling competition probabilities 2^i/n (capped at
	// 1/2) so the per-round hot path avoids math.Ldexp.
	s.probs = make([]float64, s.phases)
	for i := range s.probs {
		prob := math.Ldexp(1/float64(n), i)
		if prob > 0.5 {
			prob = 0.5
		}
		s.probs[i] = prob
	}
	return s
}

// MISRounds returns the fixed total running time of the Section 4 MIS
// algorithm for network size n — ℓ_E · (ceil(log₂ n)+1) · ℓ_P, the
// O(log³ n) bound. Unlike the CCDS schedule lengths it cannot fail: the
// MIS schedule does not depend on the message bound.
func MISRounds(n int, p Params) int {
	return newMISSchedule(n, p).total
}

// bbLen returns the bounded-broadcast slot length ℓ_BB(δ) for network size n.
func bbLen(n int, p Params, delta int) int {
	return scaled(p.BB*math.Pow(2, float64(delta)), log2Ceil(n))
}
