package core

import (
	"math"
	"math/rand/v2"

	"dualradio/internal/sim"
)

// This file implements the leap engine's side of every protocol: the
// sim.LeapBroadcaster methods (BroadcastLeap) that sample each coin-flipping
// stretch's first broadcast round directly from the geometric distribution
// instead of flipping a Bernoulli coin per round. The exact engine's
// per-round methods are untouched — leap is statistically equivalent
// (identical in distribution) but intentionally not bit-identical, because
// the PCG streams are consumed in a different order.
//
// The correctness argument, used throughout:
//
//   - Within a stretch of rounds sharing one broadcast probability p, the
//     index of the first success of iid Bernoulli(p) coins is exactly
//     geometric; sampling it in closed form is the same law as flipping the
//     coins one by one. Stretches with different probabilities are sampled
//     one after the other, each with a fresh draw.
//   - A pre-sampled broadcast round can go stale when a reception changes
//     the process's state first (a knockout, a covering announcement, an
//     asynchronous epoch restart). Discarding the stale sample and
//     re-deciding from the current state preserves the law: the discarded
//     coins occupy stream positions the exact schedule would never have
//     consumed after the same state change, each process's stream is
//     private, and the geometric distribution is memoryless.
//   - A pre-sampled round is therefore only honored when the state that
//     selected its probability regime is unchanged at the wake round; every
//     BroadcastLeap below re-runs its eligibility checks before consuming
//     the sample. Forward scans never cross a round at which a reception
//     could change the process's own next action (an epoch start that
//     recomputes activity, the announcement round that decides joining):
//     they stop and wake there instead, so the decision runs on live state.

// leapUnbounded caps closed-form geometric skips so degenerate probabilities
// (p ~ 0) cannot overflow round arithmetic; it is far beyond any schedule or
// round cap the engine accepts.
const leapUnbounded = 1 << 40

// geomSkip returns the number of failures before the first success of iid
// Bernoulli(p) trials, sampled in closed form as floor(ln U / ln(1-p)) with
// U uniform on (0,1]. A return of 0 means "success now" — the exact
// engine's rng.Float64() < p succeeding this round.
func geomSkip(rng *rand.Rand, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return leapUnbounded
	}
	u := 1 - rng.Float64() // Float64 is in [0,1); u is in (0,1]
	k := math.Floor(math.Log(u) / math.Log1p(-p))
	if !(k >= 0) { // also catches NaN
		return 0
	}
	if k > leapUnbounded {
		return leapUnbounded
	}
	return int(k)
}

// slabArena batch-allocates values of one message type. take hands out
// consecutive slots of a slab; reset recycles every slot handed out so far.
type slabArena[T any] struct {
	slab []T
	next int
}

const arenaSlabLen = 8

func (a *slabArena[T]) take() *T {
	if a.next == len(a.slab) {
		a.slab = make([]T, arenaSlabLen)
		a.next = 0
	}
	v := &a.slab[a.next]
	a.next++
	return v
}

func (a *slabArena[T]) reset() { a.next = 0 }

// leapMsgs is a per-process message arena for the leap engine's short-lived
// outgoing messages — the types built fresh per heads round whose receivers
// copy everything they keep (nominate, select, banned-list chunks, and the
// phase-A enumeration announcement; response/relay messages are excluded
// because onRespond retains their id slices). It is reset at every driven
// round: the engine reads a broadcast message only during its round, so the
// previous round's values are dead by then. Exact-engine processes never
// allocate an arena, so recycling cannot perturb bit-identical replays.
type leapMsgs struct {
	nominate slabArena[nominateMsg]
	sel      slabArena[selectMsg]
	chunk    slabArena[bannedChunkMsg]
	annA     slabArena[annAMsg]
	noms     []nomination // reusable nominateMsg entries buffer
}

func (a *leapMsgs) reset() {
	a.nominate.reset()
	a.sel.reset()
	a.chunk.reset()
	a.annA.reset()
}

func (a *leapMsgs) newNominate(n, from int, entries []nomination) *nominateMsg {
	m := a.nominate.take()
	*m = nominateMsg{
		header:  newHeader(n, from, countBits+len(entries)*2*idBits(n), nil),
		Entries: entries,
	}
	return m
}

func (a *leapMsgs) newSelect(n, from, v, w int) *selectMsg {
	m := a.sel.take()
	*m = selectMsg{header: newHeader(n, from, 2*idBits(n), nil), V: v, W: w}
	return m
}

// --- Section 4 MIS ---------------------------------------------------------

var _ sim.LeapBroadcaster = (*MISProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster. It scans the schedule
// forward from the driven round, sampling each competition phase's first
// heads round geometrically (a fresh draw per phase, since the probability
// doubles across phases) and the announcement phase's first heads at 1/2.
// Silent regimes — knocked-out competitors, covered processes, one-shot
// members — sleep exactly as the exact engine does, consuming nothing.
// A contender's scan stops at the announcement-phase start (joining is
// decided there, on live state, since a knockout may arrive mid-sleep);
// members scan freely across epochs because no reception can change their
// state. The scan does not use the exact path's incremental cursor: leap
// drives are sparse, so positions are re-derived by division.
func (p *MISProcess) BroadcastLeap(round int) (sim.Message, int) {
	if round >= p.sched.total {
		p.finished = true
		return nil, round + 1
	}
	s := p.sched
	pend := p.leapNext == round
	p.leapNext = -1
	r := round
	for r < s.total {
		off := r % s.epochLen
		phase := off / s.phaseLen
		if off == 0 {
			p.active = p.out == sim.Undecided
		}
		if phase < s.phases {
			// Competition phase.
			if !p.active && p.joinedEpoch < 0 {
				if p.out == 0 {
					return nil, s.total // covered and decided: silent for good
				}
				return nil, r - off + s.epochLen // next epoch start
			}
			if p.joinedEpoch >= 0 && p.cfg.DisableReannounce {
				return nil, s.total
			}
			var k int
			if pend && r == round {
				k = 0 // pre-sampled heads round, still eligible
			} else {
				k = geomSkip(p.cfg.Rng, s.probs[phase])
			}
			phaseEnd := r + s.phaseLen - off%s.phaseLen
			if hr := r + k; hr < phaseEnd {
				if hr == round {
					if p.joinedEpoch >= 0 {
						return p.announce(), round + 1
					}
					return p.contender(), round + 1
				}
				p.leapNext = hr
				return nil, hr
			}
			r = phaseEnd
			continue
		}
		// Announcement phase.
		if p.joinedEpoch < 0 {
			if r > round {
				// A contender may be knocked out between the driven round
				// and the announcement phase: wake there and decide then.
				return nil, r
			}
			if p.active && p.out == sim.Undecided {
				p.join(r / s.epochLen)
			} else {
				if p.out == 0 {
					return nil, s.total
				}
				return nil, r - off + s.epochLen
			}
		}
		if p.cfg.DisableReannounce && r/s.epochLen != p.joinedEpoch {
			return nil, s.total
		}
		var k int
		if pend && r == round {
			k = 0
		} else {
			k = geomSkip(p.cfg.Rng, 0.5)
		}
		epochEnd := r - off + s.epochLen
		if hr := r + k; hr < epochEnd {
			if hr == round {
				return p.announce(), round + 1
			}
			p.leapNext = hr
			return nil, hr
		}
		r = epochEnd
	}
	return nil, s.total
}

// --- Section 9 asynchronous MIS -------------------------------------------

var _ sim.LeapBroadcaster = (*AsyncMISProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster. Pre-wake and listening
// stretches sleep exactly as the exact engine does; competition phases are
// sampled geometrically (the scan stops at the announcement-phase start,
// where joining is decided on live state), and a member's permanent
// announcement duty is one geometric draw per broadcast instead of one coin
// per round. A knock-back received mid-sleep moves epochStart, which
// invalidates any pre-sampled heads round; the sample is guarded by the
// epochStart it was taken under and silently discarded on mismatch.
func (p *AsyncMISProcess) BroadcastLeap(round int) (sim.Message, int) {
	if round < p.wake {
		return nil, p.wake
	}
	if !p.awake {
		p.awake = true
		p.epochStart = round
		p.epochs = 1
	}
	if p.out == 0 {
		p.leapNext = -1
		return nil, round + 1
	}
	if p.joined {
		if p.leapNext == round {
			p.leapNext = -1
			return p.announce(), round + 1
		}
		p.leapNext = -1
		if k := geomSkip(p.cfg.Rng, 0.5); k > 0 {
			p.leapNext = round + k
			return nil, round + k
		}
		return p.announce(), round + 1
	}
	pend := p.leapNext == round && p.leapEpochStart == p.epochStart
	p.leapNext = -1
	if pos := round - p.epochStart; pos < p.listenLen {
		return nil, round + p.listenLen - pos
	}
	r := round
	for {
		pos := r - p.epochStart - p.listenLen
		phase := pos / p.sched.phaseLen
		if phase >= p.sched.phases {
			if r > round {
				// Wake at the announcement round; joining is decided there,
				// on state a mid-sleep knock-back may yet change.
				return nil, r
			}
			p.joined = true
			p.out = 1
			p.misSet.Add(p.cfg.ID)
			p.decided = round - p.wake
			if k := geomSkip(p.cfg.Rng, 0.5); k > 0 {
				p.leapNext = round + k
				return nil, round + k
			}
			return p.announce(), round + 1
		}
		var k int
		if pend && r == round {
			k = 0
		} else {
			k = geomSkip(p.cfg.Rng, p.sched.probs[phase])
		}
		phaseEnd := p.epochStart + p.listenLen + (phase+1)*p.sched.phaseLen
		if hr := r + k; hr < phaseEnd {
			if hr == round {
				return p.contender(), round + 1
			}
			p.leapNext = hr
			p.leapEpochStart = p.epochStart
			return nil, hr
		}
		r = phaseEnd
	}
}

// --- Section 5 CCDS --------------------------------------------------------

var _ sim.LeapBroadcaster = (*CCDSProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster. The MIS subroutine delegates
// to the inner process's leap path; the search epochs reuse the exact
// engine's phase-1 and phase-2 senders verbatim (their silent stretches are
// already randomness-free, so they are distribution-preserving as-is, and
// their slot cursors remain sound: leap drives phase 1 consecutively from
// its first offset and sendDecay resyncs on non-consecutive offsets) and
// replace the exploration phase — whose exact form flips a coin every round
// for every process — with a slot-aware variant that sleeps ineligible
// processes to the next boundary at which their role could change.
func (p *CCDSProcess) BroadcastLeap(round int) (sim.Message, int) {
	if round < p.sched.mis.total {
		return p.mis.BroadcastLeap(round)
	}
	if round >= p.sched.total {
		p.finish()
		return nil, round + 1
	}
	if !p.searchInit {
		p.initSearch()
	}
	if p.arena == nil {
		p.arena = &leapMsgs{}
	}
	p.arena.reset()
	t := round - p.sched.mis.total
	// Leap drives are sparse, so the position is re-derived by division
	// instead of through the exact path's incremental (epoch, phase, off)
	// cursor.
	epoch, phase, off := p.sched.locate(t)
	if off == 0 && phase == phaseBanned {
		p.startEpoch(epoch)
	}
	var m sim.Message
	var rel int
	switch phase {
	case phaseBanned:
		m, rel = p.sendBanned(off)
	case phaseDecay:
		m, rel = p.sendDecay(off)
	default:
		m, rel = p.sendExploreLeap(off)
	}
	return m, round + rel
}

// sendExploreLeap is the leap engine's phase 3. Eligibility for each slot's
// role is fixed by the time the slot begins — selects arrive only during the
// select slot, queries during the query slot, responses during the respond
// slots — so an ineligible process sleeps to the next boundary at which its
// role could have changed and re-evaluates there; eligible processes flip
// their 1/2 coin per round exactly as the exact engine does. Slots are
// re-derived arithmetically because leap drives are not consecutive (the
// exact path's exSlot cursor has no resync and must not be reused here).
func (p *CCDSProcess) sendExploreLeap(off int) (sim.Message, int) {
	bb := p.sched.bb
	slot := off / bb
	slotEnd := (slot + 1) * bb
	switch {
	case slot == 0: // select
		if p.inMIS {
			if p.nomFrom == 0 {
				// No nomination this epoch: nothing to select, and MIS
				// processes play no later phase-3 role — silent throughout.
				return nil, p.sched.p3Len - off
			}
			if p.cfg.Rng.Float64() < 0.5 {
				return p.arena.newSelect(p.cfg.N, p.cfg.ID, p.nomFrom, p.nomCand), 1
			}
			return nil, 1
		}
		return nil, slotEnd - off // a select may still arrive: wake at the query slot
	case slot == 1: // query
		if p.inMIS {
			return nil, p.sched.p3Len - off
		}
		if len(p.selected) > 0 {
			if p.cfg.Rng.Float64() < 0.5 {
				if m := p.buildQuery(); m != nil {
					return m, 1
				}
			}
			return nil, 1
		}
		return nil, slotEnd - off // a query may still arrive: wake at the respond slots
	case slot < 2+p.sched.chunks: // respond
		if p.inMIS {
			return nil, p.sched.p3Len - off
		}
		if len(p.queried) > 0 {
			if p.cfg.Rng.Float64() < 0.5 {
				if m := p.buildRespond(slot - 2); m != nil {
					return m, 1
				}
			}
			return nil, 1
		}
		// The queried set is final once the query slot ends: skip to the
		// relay slots (a response may still arrive there).
		return nil, (2+p.sched.chunks)*bb - off
	default: // relay
		if p.inMIS {
			return nil, p.sched.p3Len - off
		}
		if len(p.relays) == 0 {
			// The relay buffer is final once the respond slots end:
			// silent through the rest of phase 3.
			return nil, p.sched.p3Len - off
		}
		if p.cfg.Rng.Float64() < 0.5 {
			if m := p.buildRelay(slot - 2 - p.sched.chunks); m != nil {
				return m, 1
			}
		}
		return nil, 1
	}
}

// --- Section 6 enumeration connect ----------------------------------------

// BroadcastLeap is the connect procedure's leap path. The exact Broadcast
// flips its 1/2 coin every round, silent or not, which is why the exact
// sleep path must pre-burn the skipped rounds' draws; leap abandons stream
// alignment, so ineligible rounds consume nothing and the wake projection
// (nextPossible) is used without the burn loop. Eligible rounds flip their
// coin exactly as the exact engine does, so eligible-round behavior is
// unchanged in distribution.
func (e *enumConnect) BroadcastLeap(t int) (sim.Message, int) {
	if e.arena == nil {
		e.arena = &leapMsgs{}
	}
	e.arena.reset()
	m := e.leapMessage(t)
	if m != nil {
		return m, t + 1
	}
	return nil, e.nextPossible(t+1, t)
}

// leapMessage mirrors Broadcast's phase logic with the coin drawn only on
// rounds where this process could broadcast at all.
func (e *enumConnect) leapMessage(t int) sim.Message {
	s := e.sched
	bA, bB, bC, bD := e.boundaries()
	switch {
	case t < bA:
		if !e.dominator {
			return nil
		}
		groupLen := s.chunks0 * s.bb
		if t/groupLen != e.id%enumStagger {
			return nil
		}
		if e.rng.Float64() >= 0.5 {
			return nil
		}
		slot := (t % groupLen) / s.bb
		chunks := e.detChunks()
		if slot >= len(chunks) {
			return nil
		}
		m := e.arena.chunk.take()
		*m = bannedChunkMsg{
			header: newHeader(e.n, e.id, countBits*2+len(chunks[slot])*idBits(e.n), e.label()),
			Seq:    slot,
			IDs:    chunks[slot],
		}
		return m
	case t < bB:
		if e.dominator {
			return nil
		}
		slot := (t - bA) / s.bb
		if !e.hasRank(slot) {
			return nil
		}
		if e.rng.Float64() >= 0.5 {
			return nil
		}
		masters := e.cappedMasters()
		m := e.arena.annA.take()
		*m = annAMsg{
			header:  newHeader(e.n, e.id, countBits+len(masters)*idBits(e.n), e.label()),
			Masters: masters,
		}
		return m
	case t < bC:
		if e.dominator {
			return nil
		}
		slot := (t - bB) / (s.chunkB * s.bb)
		if !e.hasRank(slot) {
			return nil
		}
		if e.rng.Float64() >= 0.5 {
			return nil
		}
		sub := ((t - bB) % (s.chunkB * s.bb)) / s.bb
		return e.buildSummary(sub)
	case t < bD:
		if !e.dominator {
			return nil
		}
		if e.sel == nil {
			e.freezeSelection()
		}
		groupLen := s.chunksC * s.bb
		if (t-bC)/groupLen != e.id%enumStagger {
			return nil
		}
		if e.rng.Float64() >= 0.5 {
			return nil
		}
		sub := ((t - bC) % groupLen) / s.bb
		return e.buildSelPaths(sub)
	default:
		if e.dominator || len(e.forward) == 0 {
			return nil
		}
		groupLen := s.chunksD * s.bb
		if (t-bD)/groupLen != e.id%enumStagger {
			return nil
		}
		if e.rng.Float64() >= 0.5 {
			return nil
		}
		sub := ((t - bD) % groupLen) / s.bb
		chunks := chunkify(append([]int(nil), e.forward...), s.capIDs)
		if sub >= len(chunks) {
			return nil
		}
		return newRelaySel(e.n, e.id, chunks[sub], e.label())
	}
}

// detChunks caches the chunked detector list for phase 0: the detector set
// is immutable, so the chunking is computed once per process instead of once
// per heads round. Leap-only; the exact path recomputes it per heads round
// to keep its behavior untouched.
func (e *enumConnect) detChunks() [][]int {
	if e.chunks0Cache == nil {
		chunks := chunkify(e.det.IDs(), e.sched.capIDs)
		if chunks == nil {
			chunks = [][]int{}
		}
		e.chunks0Cache = chunks
	}
	return e.chunks0Cache
}

// --- Baseline, τ, and continuous CCDS --------------------------------------

var _ sim.LeapBroadcaster = (*BaselineCCDSProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster by delegating to the inner
// MIS and enumeration leap paths (MIS wake rounds never exceed the MIS
// schedule end, which is exactly where the enumeration takes over).
func (p *BaselineCCDSProcess) BroadcastLeap(round int) (sim.Message, int) {
	misTotal := p.mis.Rounds()
	if round < misTotal {
		return p.mis.BroadcastLeap(round)
	}
	if !p.enterSearch(round) {
		return nil, round + 1
	}
	m, wake := p.enum.BroadcastLeap(round - misTotal)
	return m, misTotal + wake
}

var _ sim.LeapBroadcaster = (*TauCCDSProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster. Iteration boundaries are
// always driven — inner MIS leap wakes never exceed the iteration end, and
// established dominators sleep exactly to the next boundary — so the
// per-iteration bookkeeping runs identically to the exact path.
func (p *TauCCDSProcess) BroadcastLeap(round int) (sim.Message, int) {
	misPhase := p.iterations * p.misTotal
	if round < misPhase {
		local := round % p.misTotal
		inner := p.iterationInner(local)
		if inner == nil {
			return nil, round - local + p.misTotal
		}
		msg, wake := inner.BroadcastLeap(local)
		p.noteWin(round)
		return msg, round - local + wake
	}
	if !p.enterSearch(round) {
		return nil, round + 1
	}
	msg, wake := p.enum.BroadcastLeap(round - misPhase)
	return msg, misPhase + wake
}

var _ sim.LeapBroadcaster = (*ContinuousCCDSProcess)(nil)

// BroadcastLeap implements sim.LeapBroadcaster. Period boundaries are always
// driven — inner CCDS leap wakes never exceed the period end — so the
// commit-and-rerun bookkeeping runs identically to the exact path.
func (p *ContinuousCCDSProcess) BroadcastLeap(round int) (sim.Message, int) {
	local := round % p.period
	if local == 0 {
		p.beginPeriod(round)
	}
	if p.inner == nil {
		return nil, round - local + p.period
	}
	m, wake := p.inner.BroadcastLeap(local)
	if wake > p.period {
		wake = p.period
	}
	return m, round - local + wake
}
