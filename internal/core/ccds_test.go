package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

func ccdsProc(t *testing.T, cfg CCDSConfig) *CCDSProcess {
	t.Helper()
	p, err := NewCCDSProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCCDSConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	base := CCDSConfig{
		ID: 1, N: 8, Delta: 3, B: 512,
		Detector: detector.NewSet(8),
		Params:   DefaultParams(),
		Rng:      rng,
	}
	bad := base
	bad.Delta = 0
	if _, err := NewCCDSProcess(bad); err == nil {
		t.Error("zero delta accepted")
	}
	bad = base
	bad.B = 4
	if _, err := NewCCDSProcess(bad); err == nil {
		t.Error("tiny b accepted")
	}
}

// TestCCDSRunsFixedSchedule: a full run terminates exactly at the schedule
// length with every output decided.
func TestCCDSRunsFixedSchedule(t *testing.T) {
	net, err := gen.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, net.N())
	var total int
	for v := 0; v < net.N(); v++ {
		p := ccdsProc(t, CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: 512,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(3, uint64(v))),
		})
		procs[v] = p
		total = p.Rounds()
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != total+1 && st.Rounds != total {
		t.Errorf("ran %d rounds, schedule is %d", st.Rounds, total)
	}
	for v, p := range procs {
		if p.Output() == sim.Undecided {
			t.Errorf("node %d undecided at schedule end", v)
		}
	}
}

// TestCCDSPathConnectsMISOnLine: on a path the MIS members are ≥2 hops
// apart; the search epochs must add relays so the CCDS is connected, and
// every relay lies between two MIS members.
func TestCCDSPathConnectsMISOnLine(t *testing.T) {
	net, err := gen.Line(16)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		procs[v] = ccdsProc(t, CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: 512,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(9, uint64(v))),
		})
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	member := make([]bool, net.N())
	for v, p := range procs {
		member[v] = p.Output() == 1
	}
	if !net.G().ConnectedSubset(member) {
		t.Error("CCDS disconnected on the line")
	}
	for v, p := range procs {
		if p.Output() == 0 {
			dominated := false
			for _, w := range net.G().Neighbors(v) {
				if member[w] {
					dominated = true
				}
			}
			if !dominated {
				t.Errorf("node %d undominated", v)
			}
		}
	}
}

// TestCCDSMessageBudgetRespected: a full execution with the runner's size
// enforcement active never violates the b bound.
func TestCCDSMessageBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: 64}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.RandomAssignment(net.N(), rng)
	det := detector.Complete(net, asg)
	const b = 160 // small: forces multi-chunk banned lists
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		procs[v] = ccdsProc(t, CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: b,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(11, uint64(v+1))),
		})
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatalf("message budget violated: %v", err)
	}
}

// TestCCDSDiscoveriesWithinThreeHops: every MIS id discovered through
// exploration belongs to an MIS process within 3 hops in G (the Section 5
// invariant behind Claim 1).
func TestCCDSDiscoveriesWithinThreeHops(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: 80}, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.RandomAssignment(net.N(), rng)
	det := detector.Complete(net, asg)
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		procs[v] = ccdsProc(t, CCDSConfig{
			ID: asg.ID(v), N: net.N(), Delta: net.Delta(), B: 512,
			Detector: det.Set(v), Params: DefaultParams(),
			Rng: rand.New(rand.NewPCG(21, uint64(v+1))),
		})
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MessageBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for v, p := range procs {
		cp := p.(*CCDSProcess)
		if !cp.InMIS() {
			continue
		}
		for _, id := range cp.Discovered() {
			w := asg.Node(id)
			if d := net.G().HopDistance(v, w); d < 0 || d > 3 {
				t.Errorf("MIS node %d discovered %d at hop distance %d", v, w, d)
			}
			if !procs[w].(*CCDSProcess).InMIS() {
				t.Errorf("discovered id %d is not an MIS process", id)
			}
		}
	}
}
