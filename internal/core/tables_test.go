package core

import (
	"math/rand/v2"
	"testing"
)

// TestSharedSchedulesPointerIdentity checks that every process of a fleet
// references the same schedule tables instead of rebuilding them.
func TestSharedSchedulesPointerIdentity(t *testing.T) {
	p := DefaultParams()
	if misScheduleFor(128, p) != misScheduleFor(128, p) {
		t.Fatal("misScheduleFor returned distinct tables for one key")
	}
	if misScheduleFor(128, p) == misScheduleFor(256, p) {
		t.Fatal("misScheduleFor aliased distinct keys")
	}
	s1, err := ccdsScheduleFor(128, 16, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ccdsScheduleFor(128, 16, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("ccdsScheduleFor returned distinct tables for one key")
	}
	if s1.mis != misScheduleFor(128, p) {
		t.Fatal("ccds schedule does not share the MIS table")
	}
	e1, err := enumScheduleFor(128, 16, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := enumScheduleFor(128, 16, 4096, p)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("enumScheduleFor returned distinct tables for one key")
	}
	if _, err := ccdsScheduleFor(128, 16, 8, p); err == nil {
		t.Fatal("ccdsScheduleFor accepted a bound too small for an id")
	}
}

// TestFleetSharesSchedules builds a small fleet and asserts the processes
// alias one table.
func TestFleetSharesSchedules(t *testing.T) {
	p := DefaultParams()
	var first *misSchedule
	for id := 1; id <= 8; id++ {
		proc, err := NewMISProcess(MISConfig{
			ID:     id,
			N:      8,
			Filter: FilterNone,
			Params: p,
			Rng:    rand.New(rand.NewPCG(1, uint64(id))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = proc.sched
		} else if proc.sched != first {
			t.Fatalf("process %d rebuilt the MIS schedule", id)
		}
	}
	if first == nil || len(first.probs) == 0 {
		t.Fatal("shared schedule missing probability table")
	}
}
