package core

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sort"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// enumConnect is the neighbor-enumeration connect procedure of Section 6:
// having built a dominating structure (the iterated MIS, or a single MIS for
// the naive baseline), every dominator dedicates a broadcast slot to each of
// its link-detector neighbors so the dominators can learn every other
// dominator within 3 hops together with a path in H. It is deliberately
// simple and slow — O(Δ·polylog n) — because the Section 7 lower bound rules
// out anything faster once detectors may contain mistakes.
//
// Phases, all built from bounded-broadcast slots:
//
//	0: dominators transmit their detector lists (chunked); neighbors learn
//	   their slot rank in each dominator's list, and adjacent dominators
//	   learn of each other directly.
//	A: in slot k, the rank-k neighbor of any dominator announces its id
//	   and masters (dominators covering it).
//	B: in slot k, the same process announces every dominator it heard of
//	   in phase A, each with a witness neighbor on the path.
//	C: dominators announce their selected connecting paths; first-hop
//	   relays join the CCDS.
//	D: first-hop relays forward the selection to second-hop relays.
type enumConnect struct {
	id     int
	n      int
	b      int
	delta  int
	det    *detector.Set
	params Params
	rng    *rand.Rand
	mutual bool          // label messages and require mutual detector membership
	sched  *enumSchedule // shared immutable table (see tables.go)

	started   bool
	dominator bool
	masters   []int
	joined    func() // callback when this process joins the CCDS

	// ranks caches the announcement slots this covered process owns (its
	// positions in its masters' detector lists), sorted ascending. Computed
	// lazily once phase A begins — phase-0 chunks stop arriving there, so
	// the slot set is final. nil = not yet computed (empty = no slots).
	ranks      []int
	ranksReady bool

	// Covered-process state.
	domList map[int][]int // dominator u -> sorted detector list of u
	heard   map[int]int   // dominator x -> witness (0 = x is my master)
	forward []int         // second-hop relays to notify in phase D
	isDom   map[int]bool  // senders of phase-0 chunks (dominators)

	// Dominator state.
	paths map[int]pathChoice // dominator x -> selected path
	sel   []pathChoice       // frozen selection for phase C

	// Leap engine state (unused by the exact engine): the message arena and
	// the cached phase-0 detector chunks (see leap.go).
	arena        *leapMsgs
	chunks0Cache [][]int
}

// enumStagger is the number of id-residue groups used to stagger the phases
// in which every dominator (or relay) would otherwise broadcast
// concurrently. Phases A/B are already serialized by neighbor rank; phases
// 0, C, and D have dominator-level contention, which can exceed the
// bounded-broadcast window's δ in sparse networks where the dominating
// structure is large.
const enumStagger = 8

// enumSchedule is the fixed round layout of the connect procedure.
type enumSchedule struct {
	bb      int
	capIDs  int
	chunks0 int // detector-list chunks
	chunkB  int // summary chunks per phase-B slot
	chunksC int
	chunksD int
	p0Len   int
	pALen   int
	pBLen   int
	pCLen   int
	pDLen   int
	total   int
}

func newEnumSchedule(n, delta, b int, p Params) (enumSchedule, error) {
	overhead := messageOverheadBits(n)
	if b < overhead+idBits(n) {
		return enumSchedule{}, fmt.Errorf("core: message bound b=%d bits cannot carry an id (needs >= %d)", b, overhead+idBits(n))
	}
	s := enumSchedule{capIDs: (b - overhead) / idBits(n)}
	// One δ level above the CCDS search phases: rank slots can still be
	// shared by the neighbors of several nearby dominators.
	s.bb = bbLen(n, p, p.DeltaBB+1)
	s.chunks0 = (delta + 1 + s.capIDs - 1) / s.capIDs
	perMsgB := s.capIDs / 2
	if perMsgB < 1 {
		perMsgB = 1
	}
	s.chunkB = (p.MaxMasters + perMsgB - 1) / perMsgB
	perMsgC := s.capIDs / 3
	if perMsgC < 1 {
		perMsgC = 1
	}
	s.chunksC = (p.MaxMasters + perMsgC - 1) / perMsgC
	s.chunksD = (p.MaxMasters + s.capIDs - 1) / s.capIDs
	s.p0Len = enumStagger * s.chunks0 * s.bb
	s.pALen = delta * s.bb
	s.pBLen = delta * s.chunkB * s.bb
	s.pCLen = enumStagger * s.chunksC * s.bb
	s.pDLen = enumStagger * s.chunksD * s.bb
	s.total = s.p0Len + s.pALen + s.pBLen + s.pCLen + s.pDLen
	return s, nil
}

// newEnumConnect prepares the procedure; start is deferred until the first
// round so the caller can finish its dominating-structure phase first.
func newEnumConnect(id, n, b, delta int, det *detector.Set, p Params,
	rng *rand.Rand, mutual bool, joined func()) (*enumConnect, error) {
	sched, err := enumScheduleFor(n, delta, b, p)
	if err != nil {
		return nil, err
	}
	return &enumConnect{
		id: id, n: n, b: b, delta: delta,
		det: det, params: p, rng: rng, mutual: mutual,
		sched: sched, joined: joined,
	}, nil
}

// start fixes the dominator flag and master list for the procedure.
func (e *enumConnect) start(dominator bool, masters []int) {
	e.started = true
	e.dominator = dominator
	e.masters = append([]int(nil), masters...)
	sort.Ints(e.masters)
	e.domList = make(map[int][]int)
	e.heard = make(map[int]int)
	e.isDom = make(map[int]bool)
	e.paths = make(map[int]pathChoice)
	for _, x := range e.masters {
		e.heard[x] = 0 // reachable directly: x is my master
	}
}

func (e *enumConnect) label() *detector.Set {
	if e.mutual {
		return e.det
	}
	return nil
}

func (e *enumConnect) keep(from int, label *detector.Set) bool {
	if !e.det.Contains(from) {
		return false
	}
	if e.mutual {
		return label.Contains(e.id)
	}
	return true
}

// phase boundaries, as offsets into the procedure.
func (e *enumConnect) boundaries() (a, b, c, d int) {
	a = e.sched.p0Len
	b = a + e.sched.pALen
	c = b + e.sched.pBLen
	d = c + e.sched.pCLen
	return a, b, c, d
}

// Broadcast emits this round's message; t is the procedure-relative round.
func (e *enumConnect) Broadcast(t int) sim.Message {
	bA, bB, bC, bD := e.boundaries()
	coin := e.rng.Float64() < 0.5
	switch {
	case t < bA:
		if !e.dominator || !coin {
			return nil
		}
		// Phase 0 is staggered: dominators in id-residue group g transmit
		// only during group g's window, bounding mutual contention.
		groupLen := e.sched.chunks0 * e.sched.bb
		if t/groupLen != e.id%enumStagger {
			return nil
		}
		// Only the detector list is transmitted: ranks index into it, so
		// it must have at most Δ entries (one announcement slot each).
		// Receivers learn the sender's dominator status from the message
		// itself.
		slot := (t % groupLen) / e.sched.bb
		chunks := chunkify(e.det.IDs(), e.sched.capIDs)
		if slot >= len(chunks) {
			return nil
		}
		return newBannedChunk(e.n, e.id, slot, chunks[slot], e.label())
	case t < bB:
		if e.dominator || !coin {
			return nil
		}
		slot := (t - bA) / e.sched.bb
		if !e.hasRank(slot) {
			return nil
		}
		return newAnnA(e.n, e.id, e.cappedMasters(), e.label())
	case t < bC:
		if e.dominator || !coin {
			return nil
		}
		rel := t - bB
		slot := rel / (e.sched.chunkB * e.sched.bb)
		sub := (rel % (e.sched.chunkB * e.sched.bb)) / e.sched.bb
		if !e.hasRank(slot) {
			return nil
		}
		return e.buildSummary(sub)
	case t < bD:
		if !e.dominator {
			return nil
		}
		if e.sel == nil {
			e.freezeSelection()
		}
		if !coin {
			return nil
		}
		groupLen := e.sched.chunksC * e.sched.bb
		if (t-bC)/groupLen != e.id%enumStagger {
			return nil
		}
		sub := ((t - bC) % groupLen) / e.sched.bb
		return e.buildSelPaths(sub)
	default:
		if e.dominator || len(e.forward) == 0 || !coin {
			return nil
		}
		groupLen := e.sched.chunksD * e.sched.bb
		if (t-bD)/groupLen != e.id%enumStagger {
			return nil
		}
		sub := ((t - bD) % groupLen) / e.sched.bb
		chunks := chunkify(append([]int(nil), e.forward...), e.sched.capIDs)
		if sub >= len(chunks) {
			return nil
		}
		return newRelaySel(e.n, e.id, chunks[sub], e.label())
	}
}

// BroadcastSleep is Broadcast plus a wake round for the engine's sleep
// calendar (see sim.SleepBroadcaster). The connect procedure has long
// provably-silent stretches — covered processes through phase 0 and phase C,
// dominators through phases A/B/D and outside their stagger windows, covered
// processes between their rank slots.
//
// Broadcast draws one probability-1/2 coin every round, silent or not (the
// schedule predates sleeping), so unlike the MIS and banned-list CCDS
// processes the silent stretches are not randomness-free. To keep skipped
// executions bit-identical, BroadcastSleep pre-consumes the skipped rounds'
// coins before declaring the sleep — the pre-consume strategy the
// sim.SleepBroadcaster contract sanctions. Burning a draw is several times
// cheaper than an engine dispatch into Broadcast's schedule resolution, and
// the wake calendar additionally keeps the slept process out of the round
// loop entirely.
func (e *enumConnect) BroadcastSleep(t int) (sim.Message, int) {
	m := e.Broadcast(t)
	if m != nil {
		// The engine only honors a sleep window on silent rounds, so
		// burning coins here would double-consume them.
		return m, t + 1
	}
	w := e.nextPossible(t+1, t)
	for k := t + 1; k < w; k++ {
		e.rng.Float64()
	}
	return m, w
}

// nextPossible returns the earliest round >= from at which this process
// might broadcast, capped at the schedule end. now is the round whose
// Broadcast just ran: projections may only rely on state that no reception
// at rounds >= now can change. Two kinds of state settle at phase edges —
// rank slots become final at bA (phase-0 chunks stop), the phase-D forward
// list at bD (phase-C selections stop) — so projections from before those
// edges conservatively wake at the edge (or at the fixed stagger window
// start) and re-evaluate there. Waking early is always safe: an awake round
// draws its own coin exactly as the plain Broadcast discipline would.
func (e *enumConnect) nextPossible(from, now int) int {
	s := e.sched
	total := s.total
	bA, bB, bC, bD := e.boundaries()
	t := from
	for t < total {
		switch {
		case t < bA:
			if !e.dominator {
				t = bA
				continue
			}
			gl := s.chunks0 * s.bb
			lo := (e.id % enumStagger) * gl
			switch {
			case t < lo:
				t = lo
			case t < lo+gl:
				return t
			default:
				t = bA
			}
		case t < bB:
			if e.dominator {
				t = bC // dominators are silent through phases A and B
				continue
			}
			if now < bA {
				return t // ranks not final yet: wake at the phase edge
			}
			slot := (t - bA) / s.bb
			next, ok := e.nextRankSlot(slot)
			if !ok {
				t = bB
				continue
			}
			if next == slot {
				return t
			}
			t = bA + next*s.bb
		case t < bC:
			if e.dominator {
				t = bC
				continue
			}
			slotLen := s.chunkB * s.bb
			slot := (t - bB) / slotLen
			next, ok := e.nextRankSlot(slot)
			if !ok {
				t = bD // covered: silent through phase C
				continue
			}
			if next == slot {
				return t
			}
			t = bB + next*slotLen
		case t < bD:
			if !e.dominator {
				t = bD
				continue
			}
			gl := s.chunksC * s.bb
			lo := bC + (e.id%enumStagger)*gl
			switch {
			case t < lo:
				t = lo
			case t < lo+gl:
				return t
			default:
				return total // dominators are silent in phase D
			}
		default:
			if e.dominator {
				return total
			}
			gl := s.chunksD * s.bb
			lo := bD + (e.id%enumStagger)*gl
			if t >= lo+gl {
				return total // own window passed: silent for good
			}
			if t < lo {
				t = lo
			}
			if now < bD {
				return t // forward list not final yet: wake at the window
			}
			if len(e.forward) == 0 {
				return total
			}
			return t
		}
	}
	return total
}

// hasRank reports whether this process owns announcement slot k for any of
// its masters (k is its 0-based position in the master's sorted detector
// list, as learned in phase 0). It shares the cached slot set with the
// sleep projection (nextRankSlot), so Broadcast and nextPossible can never
// disagree about slot ownership. Only called from phase A on, where the
// slot set is final.
func (e *enumConnect) hasRank(k int) bool {
	ranks := e.rankSlots()
	i := sort.SearchInts(ranks, k)
	return i < len(ranks) && ranks[i] == k
}

// rankSlots returns the sorted distinct announcement slots this process
// owns, restricted to the schedule's delta slot windows. Must only be
// called from phase A on, when domList and masters are final.
func (e *enumConnect) rankSlots() []int {
	if !e.ranksReady {
		e.ranksReady = true
		for _, u := range e.masters {
			list := e.domList[u]
			i := sort.SearchInts(list, e.id)
			if i < len(list) && list[i] == e.id && i < e.delta {
				e.ranks = append(e.ranks, i)
			}
		}
		sort.Ints(e.ranks)
		e.ranks = slices.Compact(e.ranks)
	}
	return e.ranks
}

// nextRankSlot returns the smallest owned slot >= k, or ok=false when none
// remains.
func (e *enumConnect) nextRankSlot(k int) (int, bool) {
	ranks := e.rankSlots()
	i := sort.SearchInts(ranks, k)
	if i == len(ranks) {
		return 0, false
	}
	return ranks[i], true
}

// cappedMasters returns up to MaxMasters master ids for announcement.
func (e *enumConnect) cappedMasters() []int {
	m := e.masters
	if len(m) > e.params.MaxMasters {
		m = m[:e.params.MaxMasters]
	}
	return m
}

// buildSummary emits chunk sub of the phase-B summary: every known
// dominator with its witness. When the MaxMasters cap truncates, direct
// masters (witness 0, yielding the shortest paths) are kept first.
func (e *enumConnect) buildSummary(sub int) sim.Message {
	doms := make([]int, 0, len(e.heard))
	for x := range e.heard {
		doms = append(doms, x)
	}
	sort.Slice(doms, func(i, j int) bool {
		wi, wj := e.heard[doms[i]], e.heard[doms[j]]
		if (wi == 0) != (wj == 0) {
			return wi == 0
		}
		return doms[i] < doms[j]
	})
	if len(doms) > e.params.MaxMasters {
		doms = doms[:e.params.MaxMasters]
	}
	perMsg := e.sched.capIDs / 2
	if perMsg < 1 {
		perMsg = 1
	}
	lo := sub * perMsg
	if lo >= len(doms) {
		return nil
	}
	hi := lo + perMsg
	if hi > len(doms) {
		hi = len(doms)
	}
	entries := make([]domWitness, 0, hi-lo)
	for _, x := range doms[lo:hi] {
		entries = append(entries, domWitness{Dom: x, Witness: e.heard[x]})
	}
	return newAnnB(e.n, e.id, entries, e.label())
}

// freezeSelection fixes the dominator's connecting paths for phase C,
// preferring shorter paths when the MaxMasters cap truncates.
func (e *enumConnect) freezeSelection() {
	doms := make([]int, 0, len(e.paths))
	for x := range e.paths {
		doms = append(doms, x)
	}
	sort.Slice(doms, func(i, j int) bool {
		hi, hj := hops(e.paths[doms[i]]), hops(e.paths[doms[j]])
		if hi != hj {
			return hi < hj
		}
		return doms[i] < doms[j]
	})
	if len(doms) > e.params.MaxMasters {
		doms = doms[:e.params.MaxMasters]
	}
	e.sel = make([]pathChoice, 0, len(doms))
	for _, x := range doms {
		e.sel = append(e.sel, e.paths[x])
	}
}

// buildSelPaths emits chunk sub of the dominator's selection.
func (e *enumConnect) buildSelPaths(sub int) sim.Message {
	perMsg := e.sched.capIDs / 3
	if perMsg < 1 {
		perMsg = 1
	}
	lo := sub * perMsg
	if lo >= len(e.sel) {
		return nil
	}
	hi := lo + perMsg
	if hi > len(e.sel) {
		hi = len(e.sel)
	}
	return newSelPaths(e.n, e.id, e.sel[lo:hi], e.label())
}

// Receive handles one reception; t is the procedure-relative round.
func (e *enumConnect) Receive(t int, msg sim.Message) {
	if msg == nil || msg.From() == e.id {
		return
	}
	bA, bB, _, _ := e.boundaries()
	switch m := msg.(type) {
	case *bannedChunkMsg:
		if t >= bA || !e.keep(m.from, m.det) {
			return
		}
		e.isDom[m.from] = true
		if e.dominator {
			// An adjacent dominator: directly connected in H.
			if m.from != e.id {
				e.recordPath(m.from, 0, 0)
			}
			return
		}
		list := mergeSorted(e.domList[m.from], m.IDs)
		e.domList[m.from] = list
		// Phase-0 chunks can arrive from dominators whose MIS
		// announcement was missed; adopt them as masters.
		if !containsInt(e.masters, m.from) {
			e.masters = append(e.masters, m.from)
			sort.Ints(e.masters)
			e.heard[m.from] = 0
		}
	case *annAMsg:
		if !e.keep(m.from, m.det) {
			return
		}
		if e.dominator {
			for _, x := range m.Masters {
				if x != e.id {
					e.recordPath(x, m.from, 0)
				}
			}
			return
		}
		if t < bB { // phase A only
			for _, x := range m.Masters {
				if x == e.id {
					continue
				}
				if _, ok := e.heard[x]; !ok {
					e.heard[x] = m.from
				}
			}
		}
	case *annBMsg:
		if !e.dominator || !e.keep(m.from, m.det) {
			return
		}
		for _, en := range m.Entries {
			if en.Dom == e.id {
				continue
			}
			if en.Witness == 0 {
				e.recordPath(en.Dom, m.from, 0)
			} else {
				e.recordPath(en.Dom, m.from, en.Witness)
			}
		}
	case *selPathsMsg:
		if e.dominator || !e.keep(m.from, m.det) {
			return
		}
		for _, pc := range m.Paths {
			if pc.V != e.id {
				continue
			}
			e.join()
			if pc.W != 0 && !containsInt(e.forward, pc.W) {
				e.forward = append(e.forward, pc.W)
				sort.Ints(e.forward)
			}
		}
	case *relaySelMsg:
		if e.dominator || !e.keep(m.from, m.det) {
			return
		}
		for _, w := range m.Ws {
			if w == e.id {
				e.join()
			}
		}
	}
}

func (e *enumConnect) join() {
	if e.joined != nil {
		e.joined()
	}
}

// recordPath keeps the first (and therefore shortest-discovered) path per
// dominator, preferring direct connections.
func (e *enumConnect) recordPath(x, v, w int) {
	cur, ok := e.paths[x]
	if !ok {
		e.paths[x] = pathChoice{Dom: x, V: v, W: w}
		return
	}
	if hops(pathChoice{Dom: x, V: v, W: w}) < hops(cur) {
		e.paths[x] = pathChoice{Dom: x, V: v, W: w}
	}
}

func hops(p pathChoice) int {
	switch {
	case p.V == 0:
		return 1
	case p.W == 0:
		return 2
	default:
		return 3
	}
}

// Rounds returns the total procedure length.
func (e *enumConnect) Rounds() int { return e.sched.total }

// Paths returns the dominator's selected connecting paths (nil for covered
// processes) for verification.
func (e *enumConnect) Paths() []pathChoice {
	if !e.dominator || e.paths == nil {
		return nil
	}
	var out []pathChoice
	for _, x := range sortedPathKeys(e.paths) {
		out = append(out, e.paths[x])
	}
	return out
}

func sortedPathKeys(m map[int]pathChoice) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func mergeSorted(a, b []int) []int {
	for _, x := range b {
		i := sort.SearchInts(a, x)
		if i == len(a) || a[i] != x {
			a = append(a, 0)
			copy(a[i+1:], a[i:])
			a[i] = x
		}
	}
	return a
}

func containsInt(a []int, x int) bool {
	i := sort.SearchInts(a, x)
	return i < len(a) && a[i] == x
}
