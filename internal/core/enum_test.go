package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

func newTestEnum(t *testing.T, id int, det *detector.Set, joined *bool) *enumConnect {
	t.Helper()
	e, err := newEnumConnect(id, 16, 1<<12, 6, det, DefaultParams(),
		rand.New(rand.NewPCG(1, uint64(id))), false, func() { *joined = true })
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnumScheduleStaggering(t *testing.T) {
	s, err := newEnumSchedule(64, 10, 1<<12, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.p0Len != enumStagger*s.chunks0*s.bb {
		t.Error("phase 0 not staggered")
	}
	if s.pALen != 10*s.bb {
		t.Error("phase A should have one slot per detector rank")
	}
	if s.total != s.p0Len+s.pALen+s.pBLen+s.pCLen+s.pDLen {
		t.Error("total inconsistent")
	}
}

func TestEnumScheduleRejectsTinyB(t *testing.T) {
	if _, err := newEnumSchedule(64, 10, 8, DefaultParams()); err == nil {
		t.Error("tiny b accepted")
	}
}

// TestEnumDominatorAdjacency: a dominator receiving another dominator's
// phase-0 chunk records a direct path.
func TestEnumDominatorAdjacency(t *testing.T) {
	var joined bool
	e := newTestEnum(t, 1, detector.SetOf(16, 2, 3), &joined)
	e.start(true, nil)
	e.Receive(0, newBannedChunk(16, 2, 0, []int{1, 3}, nil))
	paths := e.Paths()
	if len(paths) != 1 || paths[0].Dom != 2 || hops(paths[0]) != 1 {
		t.Errorf("paths = %+v", paths)
	}
}

// TestEnumCoveredLearnsRanksAndAnnounces: a covered process pieces together
// its master's detector list from chunks and announces in its rank slot of
// phase A.
func TestEnumCoveredLearnsRanksAndAnnounces(t *testing.T) {
	var joined bool
	// Process 3; master is process 9 whose detector list is {2,3,5}.
	e := newTestEnum(t, 3, detector.SetOf(16, 9, 2), &joined)
	e.start(false, []int{9})
	e.Receive(0, newBannedChunk(16, 9, 0, []int{2, 3, 5}, nil))
	if !e.hasRank(1) {
		t.Error("process 3 should hold rank 1 in {2,3,5}")
	}
	if e.hasRank(0) || e.hasRank(2) {
		t.Error("spurious ranks")
	}
	// In phase A slot 1 it eventually broadcasts an annA with its masters.
	bA, _, _, _ := e.boundaries()
	slotStart := bA + 1*e.sched.bb
	var msg sim.Message
	for r := slotStart; r < slotStart+e.sched.bb && msg == nil; r++ {
		msg = e.Broadcast(r)
	}
	ann, ok := msg.(*annAMsg)
	if !ok {
		t.Fatalf("no phase-A announcement in rank slot (got %T)", msg)
	}
	if len(ann.Masters) != 1 || ann.Masters[0] != 9 {
		t.Errorf("announced masters = %v", ann.Masters)
	}
}

// TestEnumThreeHopPathAssembly: dominator u learns a 3-hop path from a
// phase-B summary and tells the first-hop relay, which joins and forwards.
func TestEnumThreeHopPathAssembly(t *testing.T) {
	var uJoined, vJoined bool
	// Dominator u = 1 with neighbor v = 4; v reports dominator 9 through
	// witness 6.
	u := newTestEnum(t, 1, detector.SetOf(16, 4), &uJoined)
	u.start(true, nil)
	u.Receive(100, newAnnB(16, 4, []domWitness{{Dom: 9, Witness: 6}}, nil))
	paths := u.Paths()
	if len(paths) != 1 || paths[0].Dom != 9 || paths[0].V != 4 || paths[0].W != 6 {
		t.Fatalf("paths = %+v", paths)
	}
	u.freezeSelection()
	msg := u.buildSelPaths(0)
	sel, ok := msg.(*selPathsMsg)
	if !ok {
		t.Fatalf("selection message type %T", msg)
	}
	// Relay v = 4 receives the selection: joins and queues w = 6.
	v := newTestEnum(t, 4, detector.SetOf(16, 1, 6), &vJoined)
	v.start(false, []int{})
	v.Receive(200, sel)
	if !vJoined {
		t.Error("first-hop relay did not join")
	}
	if len(v.forward) != 1 || v.forward[0] != 6 {
		t.Errorf("forward list = %v", v.forward)
	}
	// And the second-hop relay joins on the forwarded selection.
	var wJoined bool
	w := newTestEnum(t, 6, detector.SetOf(16, 4, 9), &wJoined)
	w.start(false, []int{9})
	w.Receive(300, newRelaySel(16, 4, []int{6}, nil))
	if !wJoined {
		t.Error("second-hop relay did not join")
	}
}

// TestEnumShorterPathWins: recordPath prefers fewer hops.
func TestEnumShorterPathWins(t *testing.T) {
	var joined bool
	e := newTestEnum(t, 1, detector.SetOf(16, 4, 5), &joined)
	e.start(true, nil)
	e.recordPath(9, 4, 6) // 3 hops
	e.recordPath(9, 5, 0) // 2 hops
	if p := e.paths[9]; p.V != 5 || p.W != 0 {
		t.Errorf("kept %+v, want the 2-hop path", p)
	}
	e.recordPath(9, 4, 7) // another 3-hop: ignored
	if p := e.paths[9]; p.V != 5 {
		t.Error("longer path overwrote shorter")
	}
}

// TestEnumMutualFilterRejects: in mutual mode, messages whose label lacks
// the receiver are discarded.
func TestEnumMutualFilterRejects(t *testing.T) {
	var joined bool
	e, err := newEnumConnect(3, 16, 1<<12, 6, detector.SetOf(16, 9), DefaultParams(),
		rand.New(rand.NewPCG(2, 2)), true, func() { joined = true })
	if err != nil {
		t.Fatal(err)
	}
	e.start(false, []int{9})
	// Label excludes id 3: dropped.
	e.Receive(0, newBannedChunk(16, 9, 0, []int{2, 3}, detector.SetOf(16, 2)))
	if len(e.domList[9]) != 0 {
		t.Error("non-mutual chunk accepted")
	}
	// Mutual: kept.
	e.Receive(1, newBannedChunk(16, 9, 0, []int{2, 3}, detector.SetOf(16, 2, 3)))
	if len(e.domList[9]) != 2 {
		t.Error("mutual chunk rejected")
	}
	_ = joined
}
