package core

import (
	"testing"
	"testing/quick"

	"dualradio/internal/detector"
)

// TestMessageSizesAccountIDs: every id carried by a message costs idBits(n),
// so larger payloads always report larger sizes and the header overhead
// bound in the schedule calculations is honored.
func TestMessageSizesAccountIDs(t *testing.T) {
	n := 1000
	base := newContender(n, 1, nil).BitSize()
	if base <= 0 {
		t.Fatal("non-positive message size")
	}
	small := newBannedChunk(n, 1, 0, []int{1, 2}, nil)
	large := newBannedChunk(n, 1, 0, []int{1, 2, 3, 4, 5, 6}, nil)
	if large.BitSize()-small.BitSize() != 4*idBits(n) {
		t.Errorf("4 extra ids should cost 4·idBits: %d vs %d", small.BitSize(), large.BitSize())
	}
}

// TestDetectorLabelCostsBits: labeling a message with the sender's detector
// set (Section 6) must charge for every id in the set.
func TestDetectorLabelCostsBits(t *testing.T) {
	n := 256
	unlabeled := newAnnounce(n, 1, nil).BitSize()
	label := detector.SetOf(n, 2, 3, 4, 5)
	labeled := newAnnounce(n, 1, label).BitSize()
	wantExtra := countBits + 4*idBits(n)
	if labeled-unlabeled != wantExtra {
		t.Errorf("label cost = %d bits, want %d", labeled-unlabeled, wantExtra)
	}
}

// TestMessagesFitScheduleCapacity: a banned chunk built at the schedule's
// capIDs capacity never exceeds b — the invariant the runner enforces.
func TestMessagesFitScheduleCapacity(t *testing.T) {
	f := func(bRaw uint16, nRaw uint16) bool {
		n := 8 + int(nRaw%2000)
		b := messageOverheadBits(n) + idBits(n) + int(bRaw)
		sched, err := newCCDSSchedule(n, 16, b, DefaultParams())
		if err != nil {
			return false
		}
		ids := make([]int, sched.capIDs)
		for i := range ids {
			ids[i] = i + 1
		}
		msg := newBannedChunk(n, 1, 0, ids, nil)
		return msg.BitSize() <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMessageFromAndLabel(t *testing.T) {
	n := 64
	label := detector.SetOf(n, 9)
	m := newNominate(n, 7, []nomination{{Dest: 3, Candidate: 5}})
	if m.From() != 7 {
		t.Errorf("From = %d", m.From())
	}
	if m.DetLabel() != nil {
		t.Error("unlabeled message reports a label")
	}
	a := newAnnA(n, 7, []int{1, 2}, label)
	if a.DetLabel() != label {
		t.Error("label lost")
	}
}

// TestRespondEntryBits: respond/relay sizes grow with both entries and ids.
func TestRespondEntryBits(t *testing.T) {
	n := 512
	one := newRespond(n, 1, []respondEntry{{Origin: 2, MISID: 3, Seq: 0, IDs: []int{4, 5}}})
	two := newRespond(n, 1, []respondEntry{
		{Origin: 2, MISID: 3, Seq: 0, IDs: []int{4, 5}},
		{Origin: 6, MISID: 3, Seq: 0, IDs: []int{4, 5}},
	})
	if two.BitSize() <= one.BitSize() {
		t.Error("second entry should cost bits")
	}
	relay := newRelay(n, 1, []respondEntry{{Origin: 2, MISID: 3, Seq: 0, IDs: []int{4, 5}}})
	if relay.BitSize() != one.BitSize() {
		t.Error("relay and respond with identical payloads should cost the same")
	}
}
