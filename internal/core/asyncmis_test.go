package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
	"dualradio/internal/sim"
)

func asyncProc(t *testing.T, id, n, wake int, det *detector.Set, filter FilterMode, seed uint64) *AsyncMISProcess {
	t.Helper()
	p, err := NewAsyncMISProcess(MISConfig{
		ID:       id,
		N:        n,
		Detector: det,
		Filter:   filter,
		Params:   DefaultParams(),
		Rng:      rand.New(rand.NewPCG(seed, uint64(id))),
	}, wake)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAsyncSilentBeforeWake: a process neither broadcasts nor reacts before
// its wake round.
func TestAsyncSilentBeforeWake(t *testing.T) {
	p := asyncProc(t, 1, 8, 10, nil, FilterNone, 1)
	for r := 0; r < 10; r++ {
		if p.Broadcast(r) != nil {
			t.Fatalf("broadcast before wake at round %d", r)
		}
		p.Receive(r, newAnnounce(8, 2, nil))
	}
	if p.Output() != sim.Undecided || p.EpochsStarted() != 0 {
		t.Error("state changed while asleep")
	}
}

// TestAsyncListeningPhaseSilent: after waking, the listening phase sends
// nothing.
func TestAsyncListeningPhaseSilent(t *testing.T) {
	p := asyncProc(t, 1, 8, 0, nil, FilterNone, 2)
	listen := p.listenLen
	for r := 0; r < listen; r++ {
		if p.Broadcast(r) != nil {
			t.Fatalf("broadcast during listening phase at round %d", r)
		}
		p.Receive(r, nil)
	}
}

// TestAsyncKnockbackRestartsEpoch: a contender received mid-competition
// knocks the process back to a fresh listening phase.
func TestAsyncKnockbackRestartsEpoch(t *testing.T) {
	det := detector.SetOf(8, 2)
	p := asyncProc(t, 1, 8, 0, det, FilterDetector, 3)
	// Advance past the listening phase.
	r := 0
	for ; r < p.listenLen+2; r++ {
		p.Broadcast(r)
		p.Receive(r, nil)
	}
	if p.EpochsStarted() != 1 {
		t.Fatalf("epochs = %d", p.EpochsStarted())
	}
	p.Broadcast(r)
	p.Receive(r, newContender(8, 2, nil))
	r++
	if p.EpochsStarted() != 2 {
		t.Fatalf("knockback did not restart epoch: epochs = %d", p.EpochsStarted())
	}
	// The fresh epoch begins with a silent listening phase.
	for i := 0; i < p.listenLen; i++ {
		if p.Broadcast(r+i) != nil {
			t.Fatalf("broadcast during post-knockback listening at %d", i)
		}
		p.Receive(r+i, nil)
	}
}

// TestAsyncAnnounceDecidesZero: receiving a kept announce fixes output 0 and
// finishes the process.
func TestAsyncAnnounceDecidesZero(t *testing.T) {
	det := detector.SetOf(8, 2)
	p := asyncProc(t, 1, 8, 0, det, FilterDetector, 4)
	p.Broadcast(0)
	p.Receive(0, newAnnounce(8, 2, nil))
	if p.Output() != 0 || !p.Done() {
		t.Errorf("output=%d done=%v", p.Output(), p.Done())
	}
	if p.DecisionLatency() != 0 {
		t.Errorf("latency = %d", p.DecisionLatency())
	}
}

// TestAsyncLoneProcessJoins: an isolated process joins after one epoch and
// keeps announcing.
func TestAsyncLoneProcessJoins(t *testing.T) {
	p := asyncProc(t, 1, 8, 0, nil, FilterNone, 5)
	total := p.epochLen + 10
	announced := false
	for r := 0; r < total; r++ {
		if msg := p.Broadcast(r); msg != nil {
			if _, ok := msg.(*announceMsg); ok && p.InMIS() {
				announced = true
			}
		}
		p.Receive(r, nil)
	}
	if !p.InMIS() {
		t.Fatal("lone process did not join")
	}
	if !announced {
		t.Error("member never announced")
	}
	if p.DecisionLatency() < 0 || p.DecisionLatency() > p.epochLen {
		t.Errorf("latency = %d outside one epoch", p.DecisionLatency())
	}
}

// TestAsyncStaggeredLineSolves: end-to-end over the engine with highly
// staggered wake-ups on a path in the classic model.
func TestAsyncStaggeredLineSolves(t *testing.T) {
	net, err := gen.Line(12)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.IdentityAssignment(net.N())
	procs := make([]sim.Process, net.N())
	for v := 0; v < net.N(); v++ {
		procs[v] = asyncProc(t, asg.ID(v), net.N(), v*50, nil, FilterNone, 6)
	}
	r, err := sim.NewRunner(sim.Config{Net: net, Processes: procs, MaxRounds: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	allDecided := func() bool {
		for _, p := range procs {
			if p.Output() == sim.Undecided {
				return false
			}
		}
		return true
	}
	if _, err := r.RunUntil(allDecided); err != nil {
		t.Fatal(err)
	}
	if !allDecided() {
		t.Fatal("not all processes decided within the round cap")
	}
	for v := 0; v+1 < net.N(); v++ {
		if procs[v].Output() == 1 && procs[v+1].Output() == 1 {
			t.Errorf("adjacent nodes %d,%d both joined", v, v+1)
		}
	}
	for v, p := range procs {
		if p.Output() == 0 {
			covered := false
			ap := p.(*AsyncMISProcess)
			for _, w := range net.G().Neighbors(v) {
				if procs[w].Output() == 1 && ap.MISSet().Contains(asg.ID(int(w))) {
					covered = true
				}
			}
			if !covered {
				t.Errorf("node %d output 0 without a known MIS neighbor", v)
			}
		}
	}
}
