package core

import (
	"math/rand/v2"
	"testing"

	"dualradio/internal/detector"
)

// TestEnumSleepCoinPreConsumption asserts the exact engine's coin
// pre-consumption rule for the enumeration-connect schedule (see
// sim.SleepBroadcaster): every round of the schedule — silent or not —
// costs one coin, so BroadcastSleep must burn the skipped rounds' draws
// before declaring a sleep. The test drives one instance round by round
// through Broadcast and a twin through BroadcastSleep honoring its wake
// rounds, with identical RNG streams: the emitted messages must match
// round for round, and the streams must end at the same position (their
// next draws coincide). A missing pre-burn desynchronizes the streams and
// the trailing draws diverge.
func TestEnumSleepCoinPreConsumption(t *testing.T) {
	for _, tc := range []struct {
		name      string
		dominator bool
		masters   []int
	}{
		{"dominator", true, nil},
		{"covered", false, []int{2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 0xC01
			build := func() *enumConnect {
				e, err := newEnumConnect(3, 16, 1<<12, 6, detector.SetOf(16, 2, 5),
					DefaultParams(), rand.New(rand.NewPCG(seed, 3)), false, func() {})
				if err != nil {
					t.Fatal(err)
				}
				e.start(tc.dominator, tc.masters)
				return e
			}
			plain := build()
			sleepy := build()
			total := plain.Rounds()
			wake := 0
			for r := 0; r < total; r++ {
				pm := plain.Broadcast(r)
				if r < wake {
					// The sleeper declared silence through this round; the
					// bit-identity contract demands the plain drive agrees.
					if pm != nil {
						t.Fatalf("round %d: plain broadcast inside declared sleep (wake %d)", r, wake)
					}
					continue
				}
				sm, w := sleepy.BroadcastSleep(r)
				if w <= r {
					t.Fatalf("round %d: wake %d not in the future", r, w)
				}
				wake = w
				if (pm == nil) != (sm == nil) {
					t.Fatalf("round %d: plain message %v vs sleep message %v", r, pm, sm)
				}
			}
			// Stream-position equality: the next draws of both RNGs coincide
			// only if BroadcastSleep burned exactly the skipped rounds' coins.
			for i := 0; i < 4; i++ {
				pv := plain.rng.Float64()
				sv := sleepy.rng.Float64()
				if pv != sv {
					t.Fatalf("draw %d after the schedule: plain %v vs sleep %v — "+
						"BroadcastSleep did not pre-consume the skipped rounds' coins", i, pv, sv)
				}
			}
		})
	}
}
