package core

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// roundTrip encodes and decodes a message, failing on error.
func roundTrip(t *testing.T, msg sim.Message, n int) sim.Message {
	t.Helper()
	data, err := EncodeMessage(msg, n)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	out, err := DecodeMessage(data, n)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

// TestWireRoundTripAllTypes round-trips one instance of every message type
// and checks full structural equality (including the recomputed BitSize).
func TestWireRoundTripAllTypes(t *testing.T) {
	n := 256
	label := detector.SetOf(n, 3, 7, 200)
	msgs := []sim.Message{
		newContender(n, 5, nil),
		newContender(n, 5, label),
		newAnnounce(n, 6, label),
		newBannedChunk(n, 7, 2, []int{1, 9, 120}, nil),
		newNominate(n, 8, []nomination{{Dest: 1, Candidate: 2}, {Dest: 3, Candidate: 4}}),
		newStop(n, 9),
		newSelect(n, 10, 11, 12),
		newQuery(n, 13, []queryEntry{{Origin: 1, Target: 2}}),
		newRespond(n, 14, []respondEntry{{Origin: 1, MISID: 2, Seq: 0, IDs: []int{5, 6}}}),
		newRelay(n, 15, []respondEntry{{Origin: 3, MISID: 4, Seq: 1, IDs: []int{7}}}),
		newAnnA(n, 16, []int{1, 2, 3}, nil),
		newAnnB(n, 17, []domWitness{{Dom: 1, Witness: 0}, {Dom: 2, Witness: 9}}, label),
		newSelPaths(n, 18, []pathChoice{{Dom: 1, V: 2, W: 3}}, nil),
		newRelaySel(n, 19, []int{4, 5}, nil),
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg, n)
		if !wireEqual(msg, got) {
			t.Errorf("%T round trip mismatch:\n in: %#v\nout: %#v", msg, msg, got)
		}
		if got.BitSize() != msg.BitSize() {
			t.Errorf("%T bit size changed: %d -> %d", msg, msg.BitSize(), got.BitSize())
		}
	}
}

// wireEqual compares messages structurally, treating empty and nil slices
// as equal (encoding does not distinguish them).
func wireEqual(a, b sim.Message) bool {
	if a.From() != b.From() {
		return false
	}
	switch am := a.(type) {
	case *bannedChunkMsg:
		bm, ok := b.(*bannedChunkMsg)
		return ok && am.Seq == bm.Seq && intsEqual(am.IDs, bm.IDs)
	case *nominateMsg:
		bm, ok := b.(*nominateMsg)
		return ok && reflect.DeepEqual(am.Entries, bm.Entries)
	case *selectMsg:
		bm, ok := b.(*selectMsg)
		return ok && am.V == bm.V && am.W == bm.W
	case *queryMsg:
		bm, ok := b.(*queryMsg)
		return ok && reflect.DeepEqual(am.Entries, bm.Entries)
	case *respondMsg:
		bm, ok := b.(*respondMsg)
		return ok && entriesEqual(am.Entries, bm.Entries)
	case *relayMsg:
		bm, ok := b.(*relayMsg)
		return ok && entriesEqual(am.Entries, bm.Entries)
	case *annAMsg:
		bm, ok := b.(*annAMsg)
		return ok && intsEqual(am.Masters, bm.Masters)
	case *annBMsg:
		bm, ok := b.(*annBMsg)
		return ok && reflect.DeepEqual(am.Entries, bm.Entries)
	case *selPathsMsg:
		bm, ok := b.(*selPathsMsg)
		return ok && reflect.DeepEqual(am.Paths, bm.Paths)
	case *relaySelMsg:
		bm, ok := b.(*relaySelMsg)
		return ok && intsEqual(am.Ws, bm.Ws)
	default:
		return reflect.TypeOf(a) == reflect.TypeOf(b)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func entriesEqual(a, b []respondEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || a[i].MISID != b[i].MISID ||
			a[i].Seq != b[i].Seq || !intsEqual(a[i].IDs, b[i].IDs) {
			return false
		}
	}
	return true
}

// TestWireLabelRoundTrip verifies detector labels survive encoding.
func TestWireLabelRoundTrip(t *testing.T) {
	n := 64
	label := detector.SetOf(n, 1, 33, 63)
	got := roundTrip(t, newAnnounce(n, 2, label), n)
	am, ok := got.(*announceMsg)
	if !ok || am.det == nil || !am.det.Equal(label) {
		t.Errorf("label lost: %#v", got)
	}
}

// TestWireEncodingWithinBitBudget: the real encoding never exceeds the
// BitSize accounting plus small framing slack — the accounting is honest.
func TestWireEncodingWithinBitBudget(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := 16 + rng.IntN(2000)
		ids := make([]int, rng.IntN(20))
		for i := range ids {
			ids[i] = 1 + rng.IntN(n)
		}
		msg := newBannedChunk(n, 1+rng.IntN(n), rng.IntN(8), ids, nil)
		data, err := EncodeMessage(msg, n)
		if err != nil {
			return false
		}
		// Allow 4 bytes of framing slack over the model accounting.
		return len(data) <= msg.BitSize()/8+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWireDecodeRejectsGarbage: truncated or foreign bytes fail cleanly.
func TestWireDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeMessage([]byte{99, 1}, 16); err == nil {
		t.Error("unknown tag accepted")
	}
	data, err := EncodeMessage(newBannedChunk(64, 3, 1, []int{5, 6}, nil), 64)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeMessage(data[:cut], 64); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
