package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// Wire encoding for protocol messages. The simulator itself passes message
// values in memory — BitSize provides the model's b-bit accounting — but a
// deployment would serialize them, and round-tripping through a real
// encoding keeps the accounting honest: EncodeMessage's output length is
// verified (by tests) to stay within BitSize/8 + a small constant framing
// overhead for every message type.
//
// Format: one tag byte, the sender id as uvarint, a presence byte plus the
// detector-set label when attached, then per-type payload fields, all
// uvarint/length-prefixed.

// wire tags, one per concrete message type.
const (
	wireContender byte = iota + 1
	wireAnnounce
	wireBannedChunk
	wireNominate
	wireStop
	wireSelect
	wireQuery
	wireRespond
	wireRelay
	wireAnnA
	wireAnnB
	wireSelPaths
	wireRelaySel
)

// ErrUnknownWireTag reports an unrecognized message tag during decoding.
var ErrUnknownWireTag = errors.New("core: unknown wire tag")

// EncodeMessage serializes any protocol message produced by this package;
// n is the network size, which fixes the bit width ids are packed at.
func EncodeMessage(msg sim.Message, n int) ([]byte, error) {
	w := &wireWriter{idb: idBits(n)}
	switch m := msg.(type) {
	case *contenderMsg:
		w.byte(wireContender)
		w.uvarint(uint64(m.from))
		w.label(m.det)
	case *announceMsg:
		w.byte(wireAnnounce)
		w.uvarint(uint64(m.from))
		w.label(m.det)
	case *bannedChunkMsg:
		w.byte(wireBannedChunk)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(m.Seq))
		w.ints(m.IDs)
	case *nominateMsg:
		w.byte(wireNominate)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			w.uvarint(uint64(e.Dest))
			w.uvarint(uint64(e.Candidate))
		}
	case *stopMsg:
		w.byte(wireStop)
		w.uvarint(uint64(m.from))
		w.label(m.det)
	case *selectMsg:
		w.byte(wireSelect)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(m.V))
		w.uvarint(uint64(m.W))
	case *queryMsg:
		w.byte(wireQuery)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			w.uvarint(uint64(e.Origin))
			w.uvarint(uint64(e.Target))
		}
	case *respondMsg:
		w.byte(wireRespond)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.entries(m.Entries)
	case *relayMsg:
		w.byte(wireRelay)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.entries(m.Entries)
	case *annAMsg:
		w.byte(wireAnnA)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.ints(m.Masters)
	case *annBMsg:
		w.byte(wireAnnB)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			w.uvarint(uint64(e.Dom))
			w.uvarint(uint64(e.Witness))
		}
	case *selPathsMsg:
		w.byte(wireSelPaths)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.uvarint(uint64(len(m.Paths)))
		for _, p := range m.Paths {
			w.uvarint(uint64(p.Dom))
			w.uvarint(uint64(p.V))
			w.uvarint(uint64(p.W))
		}
	case *relaySelMsg:
		w.byte(wireRelaySel)
		w.uvarint(uint64(m.from))
		w.label(m.det)
		w.ints(m.Ws)
	default:
		return nil, fmt.Errorf("core: cannot encode message type %T", msg)
	}
	return w.buf, nil
}

// DecodeMessage reconstructs a protocol message; n is the network size used
// to rebuild detector-set labels and recompute bit accounting.
func DecodeMessage(data []byte, n int) (sim.Message, error) {
	r := &wireReader{buf: data, idb: idBits(n)}
	tag := r.byte()
	from := int(r.uvarint())
	det := r.label(n)
	var msg sim.Message
	switch tag {
	case wireContender:
		msg = newContender(n, from, det)
	case wireAnnounce:
		msg = newAnnounce(n, from, det)
	case wireBannedChunk:
		seq := int(r.uvarint())
		msg = newBannedChunk(n, from, seq, r.ints(), det)
	case wireNominate:
		k := int(r.uvarint())
		entries := make([]nomination, k)
		for i := range entries {
			entries[i] = nomination{Dest: int(r.uvarint()), Candidate: int(r.uvarint())}
		}
		msg = newNominate(n, from, entries)
	case wireStop:
		msg = newStop(n, from)
	case wireSelect:
		msg = newSelect(n, from, int(r.uvarint()), int(r.uvarint()))
	case wireQuery:
		k := int(r.uvarint())
		entries := make([]queryEntry, k)
		for i := range entries {
			entries[i] = queryEntry{Origin: int(r.uvarint()), Target: int(r.uvarint())}
		}
		msg = newQuery(n, from, entries)
	case wireRespond:
		msg = newRespond(n, from, r.entries())
	case wireRelay:
		msg = newRelay(n, from, r.entries())
	case wireAnnA:
		msg = newAnnA(n, from, r.ints(), det)
	case wireAnnB:
		k := int(r.uvarint())
		entries := make([]domWitness, k)
		for i := range entries {
			entries[i] = domWitness{Dom: int(r.uvarint()), Witness: int(r.uvarint())}
		}
		msg = newAnnB(n, from, entries, det)
	case wireSelPaths:
		k := int(r.uvarint())
		paths := make([]pathChoice, k)
		for i := range paths {
			paths[i] = pathChoice{Dom: int(r.uvarint()), V: int(r.uvarint()), W: int(r.uvarint())}
		}
		msg = newSelPaths(n, from, paths, det)
	case wireRelaySel:
		msg = newRelaySel(n, from, r.ints(), det)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownWireTag, tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	return msg, nil
}

// wireWriter accumulates an encoded message. Id lists are bit-packed at a
// fixed idb-bit width so the on-wire size matches the model's BitSize
// accounting (plus byte-alignment and framing).
type wireWriter struct {
	buf []byte
	idb int
}

func (w *wireWriter) byte(b byte) { w.buf = append(w.buf, b) }

func (w *wireWriter) uvarint(x uint64) {
	w.buf = binary.AppendUvarint(w.buf, x)
}

// ints writes a length-prefixed, bit-packed id list.
func (w *wireWriter) ints(ids []int) {
	w.uvarint(uint64(len(ids)))
	var acc uint64
	bits := 0
	for _, id := range ids {
		acc |= uint64(id) << bits
		bits += w.idb
		for bits >= 8 {
			w.buf = append(w.buf, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		w.buf = append(w.buf, byte(acc))
	}
}

func (w *wireWriter) label(det *detector.Set) {
	if det == nil {
		w.byte(0)
		return
	}
	w.byte(1)
	w.ints(det.IDs())
}

func (w *wireWriter) entries(es []respondEntry) {
	w.uvarint(uint64(len(es)))
	for _, e := range es {
		w.uvarint(uint64(e.Origin))
		w.uvarint(uint64(e.MISID))
		w.uvarint(uint64(e.Seq))
		w.ints(e.IDs)
	}
}

// wireReader consumes an encoded message.
type wireReader struct {
	buf []byte
	idb int
	err error
}

func (r *wireReader) byte() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, k := binary.Uvarint(r.buf)
	if k <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[k:]
	return x
}

// ints reads a length-prefixed, bit-packed id list.
func (r *wireReader) ints() []int {
	k := int(r.uvarint())
	if r.err != nil || k < 0 {
		r.fail()
		return nil
	}
	need := (k*r.idb + 7) / 8
	if need > len(r.buf) {
		r.fail()
		return nil
	}
	out := make([]int, 0, k)
	var acc uint64
	bits := 0
	pos := 0
	mask := uint64(1)<<r.idb - 1
	for i := 0; i < k; i++ {
		for bits < r.idb {
			acc |= uint64(r.buf[pos]) << bits
			pos++
			bits += 8
		}
		out = append(out, int(acc&mask))
		acc >>= r.idb
		bits -= r.idb
	}
	r.buf = r.buf[need:]
	return out
}

func (r *wireReader) label(n int) *detector.Set {
	present := r.byte()
	if present == 0 || r.err != nil {
		return nil
	}
	return detector.SetOf(n, r.ints()...)
}

func (r *wireReader) entries() []respondEntry {
	k := int(r.uvarint())
	if r.err != nil || k > len(r.buf)+1 {
		r.fail()
		return nil
	}
	out := make([]respondEntry, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, respondEntry{
			Origin: int(r.uvarint()),
			MISID:  int(r.uvarint()),
			Seq:    int(r.uvarint()),
			IDs:    r.ints(),
		})
	}
	return out
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errors.New("core: truncated wire message")
	}
}
