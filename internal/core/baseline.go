package core

import (
	"fmt"

	"dualradio/internal/sim"
)

// BaselineCCDSProcess is the naive CCDS construction the paper uses as its
// point of comparison in Section 5: build an MIS, then give every neighbor
// of every MIS node a chance to announce, and announce again what was heard
// — O(Δ·polylog n) rounds regardless of message size, versus the banned-list
// algorithm's O(Δ·log²n/b + log³n). It exercises the same enumeration
// connect machinery as the Section 6 algorithm, but with a 0-complete
// detector and a single MIS.
type BaselineCCDSProcess struct {
	cfg   CCDSConfig
	mis   *MISProcess
	enum  *enumConnect
	out   int
	done  bool
	begun bool
	total int
}

var _ sim.Process = (*BaselineCCDSProcess)(nil)

// NewBaselineCCDSProcess validates cfg and returns a ready process.
func NewBaselineCCDSProcess(cfg CCDSConfig) (*BaselineCCDSProcess, error) {
	misCfg := MISConfig{
		ID:       cfg.ID,
		N:        cfg.N,
		Detector: cfg.Detector,
		Filter:   FilterDetector,
		Params:   cfg.Params,
		Rng:      cfg.Rng,
	}
	inner, err := NewMISProcess(misCfg)
	if err != nil {
		return nil, err
	}
	p := &BaselineCCDSProcess{cfg: cfg, mis: inner, out: sim.Undecided}
	p.enum, err = newEnumConnect(cfg.ID, cfg.N, cfg.B, cfg.Delta, cfg.Detector,
		cfg.Params, cfg.Rng, false, p.join)
	if err != nil {
		return nil, err
	}
	p.total = inner.Rounds() + p.enum.Rounds()
	return p, nil
}

func (p *BaselineCCDSProcess) join() { p.out = 1 }

// BaselineCCDSRounds returns the naive algorithm's fixed total running time
// — O(Δ·polylog n) rounds regardless of message size.
func BaselineCCDSRounds(n, delta, b int, p Params) (int, error) {
	es, err := enumScheduleFor(n, delta, b, p)
	if err != nil {
		return 0, err
	}
	return misScheduleFor(n, p).total + es.total, nil
}

// TauCCDSRounds returns the Section 6 algorithm's fixed total running time
// for mistake bound τ.
func TauCCDSRounds(n, delta, b int, p Params, tau int) (int, error) {
	if tau < 0 {
		return 0, fmt.Errorf("core: tau must be non-negative, got %d", tau)
	}
	es, err := enumScheduleFor(n, delta, b, p)
	if err != nil {
		return 0, err
	}
	return (tau+1)*misScheduleFor(n, p).total + es.total, nil
}

// Rounds returns the fixed total running time.
func (p *BaselineCCDSProcess) Rounds() int { return p.total }

// Output implements sim.Process.
func (p *BaselineCCDSProcess) Output() int { return p.out }

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver).
func (p *BaselineCCDSProcess) PassiveReceive() {}

// Done implements sim.Process.
func (p *BaselineCCDSProcess) Done() bool { return p.done }

// InMIS reports whether the process joined the underlying MIS.
func (p *BaselineCCDSProcess) InMIS() bool { return p.mis.InMIS() }

// Broadcast implements sim.Process.
func (p *BaselineCCDSProcess) Broadcast(round int) sim.Message {
	misTotal := p.mis.Rounds()
	if round < misTotal {
		return p.mis.Broadcast(round)
	}
	if !p.enterSearch(round) {
		return nil
	}
	return p.enum.Broadcast(round - misTotal)
}

// BroadcastSleep implements sim.SleepBroadcaster: the MIS subroutine's
// sleep windows pass through unchanged, and the enumeration schedule
// reports its own (see enumConnect.BroadcastSleep for the coin
// pre-consumption that keeps skipped executions bit-identical).
func (p *BaselineCCDSProcess) BroadcastSleep(round int) (sim.Message, int) {
	misTotal := p.mis.Rounds()
	if round < misTotal {
		// MIS wake rounds never exceed the MIS schedule end, which is
		// exactly where the enumeration takes over.
		return p.mis.BroadcastSleep(round)
	}
	if !p.enterSearch(round) {
		return nil, round + 1
	}
	m, wake := p.enum.BroadcastSleep(round - misTotal)
	return m, misTotal + wake
}

// enterSearch finalizes the MIS phase on the first search round; it reports
// false once the schedule has ended (fixing the terminal output).
func (p *BaselineCCDSProcess) enterSearch(round int) bool {
	if round >= p.total {
		p.done = true
		if p.out == sim.Undecided {
			p.out = 0
		}
		return false
	}
	if !p.begun {
		p.begun = true
		p.enum.start(p.mis.InMIS(), p.mis.Masters())
		if p.mis.InMIS() {
			p.out = 1
		}
	}
	return true
}

// Receive implements sim.Process.
func (p *BaselineCCDSProcess) Receive(round int, msg sim.Message) {
	misTotal := p.mis.Rounds()
	if round < misTotal {
		p.mis.Receive(round, msg)
		return
	}
	if p.begun {
		p.enum.Receive(round-misTotal, msg)
	}
}
