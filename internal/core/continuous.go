package core

import (
	"fmt"
	"math/rand/v2"

	"dualradio/internal/detector"
	"dualradio/internal/sim"
)

// ContinuousConfig configures one process of the Section 8 continuous CCDS
// algorithm for dynamic link detectors.
type ContinuousConfig struct {
	// ID is this process's id in [1, n].
	ID int
	// N is the network size.
	N int
	// Delta is the maximum reliable degree Δ.
	Delta int
	// B is the message bound in bits.
	B int
	// DetectorAt returns the process's link detector set at the start of
	// the given round (its local view of the dynamic detector service).
	DetectorAt func(round int) *detector.Set
	// Params holds the constant factors.
	Params Params
	// Rng is the process's private randomness stream.
	Rng *rand.Rand
}

// ContinuousCCDSProcess reruns the Section 5 CCDS algorithm every
// δ_CDS = Θ(Δ·log²n/b + log³n) rounds, reading the dynamic link detector's
// current output at the start of each period and committing new outputs only
// at period boundaries, so the structure transitions atomically. If the
// dynamic detector stabilizes at round r, the committed outputs solve the
// CCDS problem from round r + 2·δ_CDS onward w.h.p. (Theorem 8.1).
type ContinuousCCDSProcess struct {
	cfg    ContinuousConfig
	period int
	inner  *CCDSProcess
	out    int
}

var _ sim.Process = (*ContinuousCCDSProcess)(nil)

// NewContinuousCCDSProcess validates cfg and returns a ready process.
func NewContinuousCCDSProcess(cfg ContinuousConfig) (*ContinuousCCDSProcess, error) {
	if cfg.DetectorAt == nil {
		return nil, fmt.Errorf("core: process %d has no dynamic detector view", cfg.ID)
	}
	period, err := CCDSRounds(cfg.N, cfg.Delta, cfg.B, cfg.Params)
	if err != nil {
		return nil, err
	}
	return &ContinuousCCDSProcess{cfg: cfg, period: period, out: sim.Undecided}, nil
}

// Period returns δ_CDS, the length in rounds of one CCDS rerun.
func (p *ContinuousCCDSProcess) Period() int { return p.period }

// Output implements sim.Process, returning the committed output of the last
// completed period (Undecided before the first period completes).
func (p *ContinuousCCDSProcess) Output() int { return p.out }

// PassiveReceive marks that Receive ignores nil messages and the process's
// own echo (see sim.PassiveReceiver).
func (p *ContinuousCCDSProcess) PassiveReceive() {}

// Done implements sim.Process. A continuous process never terminates on its
// own; executions are bounded by the runner's round cap.
func (p *ContinuousCCDSProcess) Done() bool { return false }

// Broadcast implements sim.Process.
func (p *ContinuousCCDSProcess) Broadcast(round int) sim.Message {
	local := round % p.period
	if local == 0 {
		p.beginPeriod(round)
	}
	if p.inner == nil {
		return nil
	}
	return p.inner.Broadcast(local)
}

// beginPeriod commits the previous period's result and starts a fresh inner
// CCDS run against the detector's current output. Called at every period
// boundary by both the exact and leap broadcast paths.
func (p *ContinuousCCDSProcess) beginPeriod(round int) {
	p.commit()
	inner, err := NewCCDSProcess(CCDSConfig{
		ID:       p.cfg.ID,
		N:        p.cfg.N,
		Delta:    p.cfg.Delta,
		B:        p.cfg.B,
		Detector: p.cfg.DetectorAt(round),
		Params:   p.cfg.Params,
		Rng:      p.cfg.Rng,
	})
	if err != nil {
		// Unreachable after the constructor validated the schedule.
		p.inner = nil
		return
	}
	p.inner = inner
}

// commit publishes the previous period's result: any process the inner run
// left undecided defaults to 0, matching the inner algorithm's terminal rule.
func (p *ContinuousCCDSProcess) commit() {
	if p.inner == nil {
		return
	}
	if out := p.inner.Output(); out != sim.Undecided {
		p.out = out
	} else {
		p.out = 0
	}
}

// Receive implements sim.Process.
func (p *ContinuousCCDSProcess) Receive(round int, msg sim.Message) {
	if p.inner != nil {
		p.inner.Receive(round%p.period, msg)
	}
}
