package dualgraph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIdentityAssignment(t *testing.T) {
	a := IdentityAssignment(5)
	for v := 0; v < 5; v++ {
		if a.ID(v) != v+1 || a.Node(v+1) != v {
			t.Errorf("identity broken at %d", v)
		}
	}
	if a.N() != 5 {
		t.Errorf("N = %d", a.N())
	}
}

// TestRandomAssignmentIsBijection verifies the id assignment is always a
// permutation of 1..n with consistent inverse.
func TestRandomAssignmentIsBijection(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 1 + rng.IntN(50)
		a := RandomAssignment(n, rng)
		seen := make([]bool, n+1)
		for v := 0; v < n; v++ {
			id := a.ID(v)
			if id < 1 || id > n || seen[id] {
				return false
			}
			seen[id] = true
			if a.Node(id) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewAssignment(t *testing.T) {
	a, err := NewAssignment([]int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID(0) != 3 || a.Node(3) != 0 {
		t.Error("explicit mapping broken")
	}
	for _, bad := range [][]int{
		{1, 1, 2}, // duplicate
		{0, 1, 2}, // below range
		{1, 2, 4}, // above range
	} {
		if _, err := NewAssignment(bad); err == nil {
			t.Errorf("accepted invalid ids %v", bad)
		}
	}
}
