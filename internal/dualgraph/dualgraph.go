// Package dualgraph defines the dual graph network model of Censor-Hillel,
// Gilbert, Kuhn, Lynch, and Newport (PODC 2011): a pair of undirected graphs
// (G, G') over the same n wireless nodes with E ⊆ E'. Edges in G are
// reliable — in the absence of collisions they always deliver messages —
// while edges in G' \ G are unreliable and behave reliably only in rounds
// where the adversary includes them in the reach set.
//
// Section 2 of the paper additionally embeds nodes in the plane: there is a
// constant d >= 1 such that dist(u,v) <= 1 implies (u,v) ∈ E and every
// (u,v) ∈ E' has dist(u,v) <= d. Validate checks these invariants.
package dualgraph

import (
	"errors"
	"fmt"
	"sync"

	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// Model errors reported by Validate.
var (
	ErrNotSubgraph     = errors.New("dualgraph: E is not a subset of E'")
	ErrDisconnected    = errors.New("dualgraph: reliable graph G is not connected")
	ErrMissingEdge     = errors.New("dualgraph: nodes within distance 1 lack a reliable edge")
	ErrEdgeTooLong     = errors.New("dualgraph: unreliable edge longer than gray zone d")
	ErrBadGrayZone     = errors.New("dualgraph: gray zone d must be at least 1")
	ErrSizeMismatch    = errors.New("dualgraph: G, G' and coordinates disagree on n")
	ErrTooFewProcesses = errors.New("dualgraph: model requires n > 2")
)

// Network is a dual graph radio network instance: the reliable graph G, the
// superset graph G', the plane embedding, and the gray zone constant d.
type Network struct {
	g      *graph.Graph
	gPrime *graph.Graph
	coords []geom.Point
	d      float64

	// Derived quantities are memoized: graphs are immutable, and the
	// engine plus every adversary constructor ask for the gray edge list
	// and Δ on the trial hot path.
	grayOnce sync.Once
	gray     [][2]int
	adjOnce  sync.Once
	grayAdj  [][]GrayArc
}

// GrayArc is one endpoint's view of a gray edge: the opposite node and the
// edge's index in GrayEdges.
type GrayArc struct {
	Peer int32
	Idx  int32
}

// New assembles a network from its parts. It does not validate the model
// invariants; call Validate for that (generators always produce valid
// networks, but hand-built test fixtures may deliberately break invariants).
func New(g, gPrime *graph.Graph, coords []geom.Point, d float64) *Network {
	return &Network{g: g, gPrime: gPrime, coords: coords, d: d}
}

// N returns the number of nodes.
func (n *Network) N() int { return n.g.N() }

// G returns the reliable graph.
func (n *Network) G() *graph.Graph { return n.g }

// GPrime returns the unreliable superset graph G'.
func (n *Network) GPrime() *graph.Graph { return n.gPrime }

// Coord returns the plane position of node v.
func (n *Network) Coord(v int) geom.Point { return n.coords[v] }

// Coords returns the full embedding. The slice is owned by the network and
// must not be modified.
func (n *Network) Coords() []geom.Point { return n.coords }

// D returns the gray zone constant d: the maximum distance at which an
// unreliable edge may exist.
func (n *Network) D() float64 { return n.d }

// Delta returns Δ, the maximum degree in the reliable graph G.
func (n *Network) Delta() int { return n.g.MaxDegree() }

// DeltaPrime returns Δ', the maximum degree in G'.
func (n *Network) DeltaPrime() int { return n.gPrime.MaxDegree() }

// GrayEdges returns the unreliable-only edges E' \ E as (u, v) pairs with
// u < v. These are the edges whose per-round behavior the adversary chooses.
// The slice is computed once, shared by all callers, and must not be
// modified.
func (n *Network) GrayEdges() [][2]int {
	n.grayOnce.Do(func() {
		n.gPrime.Edges(func(u, v int) {
			if !n.g.HasEdge(u, v) {
				n.gray = append(n.gray, [2]int{u, v})
			}
		})
	})
	return n.gray
}

// GrayAdjacency returns, for each node, the gray edges incident to it —
// the per-node index every adaptive adversary walks. Like GrayEdges it is
// computed once and shared: adversaries are constructed per trial, and with
// the instance cache many trials share one network, so the rebuild cost
// would otherwise recur on every trial's setup path. Callers must not
// modify the returned slices.
func (n *Network) GrayAdjacency() [][]GrayArc {
	n.adjOnce.Do(func() {
		gray := n.GrayEdges()
		deg := make([]int32, n.N())
		for _, e := range gray {
			deg[e[0]]++
			deg[e[1]]++
		}
		// One arena allocation, carved into per-node slices.
		arena := make([]GrayArc, 2*len(gray))
		adj := make([][]GrayArc, n.N())
		off := int32(0)
		for v := range adj {
			adj[v] = arena[off : off : off+deg[v]]
			off += deg[v]
		}
		for i, e := range gray {
			u, v := e[0], e[1]
			adj[u] = append(adj[u], GrayArc{Peer: int32(v), Idx: int32(i)})
			adj[v] = append(adj[v], GrayArc{Peer: int32(u), Idx: int32(i)})
		}
		n.grayAdj = adj
	})
	return n.grayAdj
}

// Validate checks the Section 2 model invariants: n > 2, matching sizes,
// E ⊆ E', G connected, d >= 1, every pair within distance 1 reliable, and
// every G' edge within distance d. It returns the first violated invariant.
func (n *Network) Validate() error {
	if n.g.N() != n.gPrime.N() || n.g.N() != len(n.coords) {
		return fmt.Errorf("%w: |G|=%d |G'|=%d |coords|=%d",
			ErrSizeMismatch, n.g.N(), n.gPrime.N(), len(n.coords))
	}
	if n.N() <= 2 {
		return fmt.Errorf("%w: n=%d", ErrTooFewProcesses, n.N())
	}
	if n.d < 1 {
		return fmt.Errorf("%w: d=%v", ErrBadGrayZone, n.d)
	}
	if !n.g.IsSubgraphOf(n.gPrime) {
		return ErrNotSubgraph
	}
	if !n.g.Connected() {
		return ErrDisconnected
	}
	for u := 0; u < n.N(); u++ {
		for v := u + 1; v < n.N(); v++ {
			if n.coords[u].Dist(n.coords[v]) <= 1 && !n.g.HasEdge(u, v) {
				return fmt.Errorf("%w: nodes %d and %d at distance %.4f",
					ErrMissingEdge, u, v, n.coords[u].Dist(n.coords[v]))
			}
		}
	}
	var bad error
	n.gPrime.Edges(func(u, v int) {
		if bad == nil && n.coords[u].Dist(n.coords[v]) > n.d+1e-9 {
			bad = fmt.Errorf("%w: edge (%d,%d) at distance %.4f > d=%.4f",
				ErrEdgeTooLong, u, v, n.coords[u].Dist(n.coords[v]), n.d)
		}
	})
	return bad
}
