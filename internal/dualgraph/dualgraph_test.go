package dualgraph

import (
	"errors"
	"testing"

	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// triangle builds a valid 3-node network: unit-spaced line in G with a
// gray-zone edge across.
func triangle(t *testing.T) *Network {
	t.Helper()
	g := graph.NewBuilder(3)
	gp := graph.NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if err := gp.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gp.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	coords := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	return New(g.Build(), gp.Build(), coords, 2)
}

func TestValidateAccepts(t *testing.T) {
	if err := triangle(t).Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
}

func TestValidateRejectsSubgraphViolation(t *testing.T) {
	g := graph.NewBuilder(3)
	gp := graph.NewBuilder(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, gp, 0, 1) // (1,2) missing from G'
	coords := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	net := New(g.Build(), gp.Build(), coords, 2)
	if err := net.Validate(); !errors.Is(err, ErrNotSubgraph) {
		t.Errorf("want ErrNotSubgraph, got %v", err)
	}
}

func TestValidateRejectsDisconnected(t *testing.T) {
	g := graph.NewBuilder(4)
	gp := graph.NewBuilder(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, gp, 0, 1)
	mustAdd(t, g, 2, 3)
	mustAdd(t, gp, 2, 3)
	coords := []geom.Point{{X: 0}, {X: 1}, {X: 5}, {X: 6}}
	net := New(g.Build(), gp.Build(), coords, 2)
	if err := net.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("want ErrDisconnected, got %v", err)
	}
}

func TestValidateRejectsMissingUnitEdge(t *testing.T) {
	g := graph.NewBuilder(3)
	gp := graph.NewBuilder(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, gp, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, gp, 1, 2)
	// Node 2 at distance 0.5 of node 0, but no (0,2) reliable edge.
	coords := []geom.Point{{X: 0}, {X: 0.4}, {X: 0.5}}
	net := New(g.Build(), gp.Build(), coords, 2)
	if err := net.Validate(); !errors.Is(err, ErrMissingEdge) {
		t.Errorf("want ErrMissingEdge, got %v", err)
	}
}

func TestValidateRejectsLongGrayEdge(t *testing.T) {
	g := graph.NewBuilder(3)
	gp := graph.NewBuilder(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, gp, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, gp, 1, 2)
	mustAdd(t, gp, 0, 2) // distance 2.2 > d = 2
	coords := []geom.Point{{X: 0}, {X: 1.1}, {X: 2.2}}
	net := New(g.Build(), gp.Build(), coords, 2)
	if err := net.Validate(); !errors.Is(err, ErrEdgeTooLong) {
		t.Errorf("want ErrEdgeTooLong, got %v", err)
	}
}

func TestValidateRejectsBadGrayZone(t *testing.T) {
	net := triangle(t)
	bad := New(net.G(), net.GPrime(), net.Coords(), 0.5)
	if err := bad.Validate(); !errors.Is(err, ErrBadGrayZone) {
		t.Errorf("want ErrBadGrayZone, got %v", err)
	}
}

func TestValidateRejectsTooFew(t *testing.T) {
	g := graph.NewBuilder(2)
	gp := graph.NewBuilder(2)
	mustAdd(t, g, 0, 1)
	mustAdd(t, gp, 0, 1)
	net := New(g.Build(), gp.Build(), []geom.Point{{}, {X: 1}}, 2)
	if err := net.Validate(); !errors.Is(err, ErrTooFewProcesses) {
		t.Errorf("want ErrTooFewProcesses, got %v", err)
	}
}

func TestValidateRejectsSizeMismatch(t *testing.T) {
	net := triangle(t)
	bad := New(net.G(), graph.New(4), net.Coords(), 2)
	if err := bad.Validate(); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("want ErrSizeMismatch, got %v", err)
	}
}

func TestGrayEdges(t *testing.T) {
	net := triangle(t)
	gray := net.GrayEdges()
	if len(gray) != 1 || gray[0] != [2]int{0, 2} {
		t.Errorf("gray edges = %v", gray)
	}
	if net.Delta() != 2 || net.DeltaPrime() != 2 {
		t.Errorf("Δ=%d Δ'=%d", net.Delta(), net.DeltaPrime())
	}
}

func mustAdd(t *testing.T, g *graph.Builder, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}
