package dualgraph

import (
	"fmt"
	"math/rand/v2"
)

// Assignment is the bijection proc from processes to graph nodes fixed at
// the start of an execution (Section 2). Process ids are the integers
// 1..n; node indices are 0..n-1. The adversary controls the bijection, so
// experiments can use either the identity mapping or a seeded random
// permutation.
type Assignment struct {
	idOf   []int // node index -> process id (1-based)
	nodeOf []int // process id (1-based) -> node index; slot 0 unused
}

// IdentityAssignment maps node v to process id v+1.
func IdentityAssignment(n int) *Assignment {
	a := &Assignment{idOf: make([]int, n), nodeOf: make([]int, n+1)}
	for v := 0; v < n; v++ {
		a.idOf[v] = v + 1
		a.nodeOf[v+1] = v
	}
	return a
}

// RandomAssignment maps nodes to a seeded random permutation of 1..n,
// modelling the adversary's control over process placement.
func RandomAssignment(n int, rng *rand.Rand) *Assignment {
	a := IdentityAssignment(n)
	rng.Shuffle(n, func(i, j int) {
		a.idOf[i], a.idOf[j] = a.idOf[j], a.idOf[i]
	})
	for v, id := range a.idOf {
		a.nodeOf[id] = v
	}
	return a
}

// NewAssignment builds an assignment from an explicit node->id mapping.
// ids must be a permutation of 1..len(ids).
func NewAssignment(ids []int) (*Assignment, error) {
	n := len(ids)
	a := &Assignment{idOf: make([]int, n), nodeOf: make([]int, n+1)}
	seen := make([]bool, n+1)
	for v, id := range ids {
		if id < 1 || id > n || seen[id] {
			return nil, fmt.Errorf("dualgraph: ids are not a permutation of 1..%d (id %d at node %d)", n, id, v)
		}
		seen[id] = true
		a.idOf[v] = id
		a.nodeOf[id] = v
	}
	return a, nil
}

// N returns the number of processes.
func (a *Assignment) N() int { return len(a.idOf) }

// ID returns the process id assigned to node v.
func (a *Assignment) ID(v int) int { return a.idOf[v] }

// Node returns the node index hosting process id.
func (a *Assignment) Node(id int) int { return a.nodeOf[id] }
