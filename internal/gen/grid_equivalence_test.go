package gen

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// edgeList flattens a graph into its sorted (u, v) pairs for comparison.
func edgeList(g *graph.Graph) [][2]int {
	var out [][2]int
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

func sameEdges(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	ea, eb := edgeList(a), edgeList(b)
	if len(ea) != len(eb) {
		t.Fatalf("%s: %d edges vs %d edges", label, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ea[i], eb[i])
		}
	}
}

// TestAssembleMatchesAllPairs is the golden equivalence test for the
// grid-bucketed generator: from identical RNG states, the grid sweep and the
// retained all-pairs reference must produce byte-identical networks — same
// reliable edges, same gray edges (hence the same gray-probability draws in
// the same order), same points — and must leave the RNG stream in the same
// position.
func TestAssembleMatchesAllPairs(t *testing.T) {
	for _, n := range []int{64, 256, 512} {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
				for _, tc := range []struct {
					name     string
					d        float64
					grayProb float64
				}{
					{"default", 2, 0.5},
					{"wide-gray", 3, 0.25},
					{"no-gray", 2, 0},
				} {
					ptsRng := rand.New(rand.NewPCG(seed, 0xA11))
					side := 10.0
					pts := make([]geom.Point, n)
					for i := range pts {
						pts[i] = geom.Point{X: ptsRng.Float64() * side, Y: ptsRng.Float64() * side}
					}
					gridRng := rand.New(rand.NewPCG(seed, 0xB22))
					refRng := rand.New(rand.NewPCG(seed, 0xB22))
					got := assemble(pts, tc.d, tc.grayProb, gridRng)
					want := assembleAllPairs(pts, tc.d, tc.grayProb, refRng)
					sameEdges(t, tc.name+"/G", got.G(), want.G())
					sameEdges(t, tc.name+"/G'", got.GPrime(), want.GPrime())
					for i := range pts {
						if got.Coord(i) != want.Coord(i) {
							t.Fatalf("%s: point %d differs", tc.name, i)
						}
					}
					// Both sweeps must have consumed the same number of
					// draws: the streams stay aligned afterwards.
					if g, w := gridRng.Float64(), refRng.Float64(); g != w {
						t.Fatalf("%s: RNG streams diverged after assembly (%v vs %v)", tc.name, g, w)
					}
				}
			})
		}
	}
}

// TestRandomGeometricUsesGrid locks the end-to-end generator to the
// reference sweep: a full RandomGeometric call (including connectivity
// retries) must match a hand-run reference loop from the same seed.
func TestRandomGeometricUsesGrid(t *testing.T) {
	cfg := GeometricConfig{N: 192}
	if err := (&cfg).setDefaults(); err != nil {
		t.Fatal(err)
	}
	got, err := RandomGeometric(GeometricConfig{N: 192}, rand.New(rand.NewPCG(7, 9)))
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRandomGeometric(t, cfg, rand.New(rand.NewPCG(7, 9)))
	sameEdges(t, "G", got.G(), want.G())
	sameEdges(t, "G'", got.GPrime(), want.GPrime())
}

// referenceRandomGeometric mirrors RandomGeometric with the all-pairs
// assembly.
func referenceRandomGeometric(t *testing.T, cfg GeometricConfig, rng *rand.Rand) *dualgraph.Network {
	t.Helper()
	side := sideFor(cfg)
	for try := 0; try < cfg.Retries; try++ {
		pts := make([]geom.Point, cfg.N)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		net := assembleAllPairs(pts, cfg.D, cfg.GrayProb, rng)
		if net.G().Connected() {
			return net
		}
	}
	t.Fatalf("reference generator failed to connect")
	return nil
}
