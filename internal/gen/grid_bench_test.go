package gen

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"dualradio/internal/geom"
)

// BenchmarkAssemble pits the grid-bucketed sweep against the retained
// all-pairs reference across sizes: the grid should scale ~n·Δ while the
// reference scales n².
func BenchmarkAssemble(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		cfg := GeometricConfig{N: n}
		if err := (&cfg).setDefaults(); err != nil {
			b.Fatal(err)
		}
		side := sideFor(cfg)
		rng := rand.New(rand.NewPCG(uint64(n), 1))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		b.Run(fmt.Sprintf("grid/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				assemble(pts, cfg.D, cfg.GrayProb, rand.New(rand.NewPCG(uint64(n), 2)))
			}
		})
		b.Run(fmt.Sprintf("allpairs/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				assembleAllPairs(pts, cfg.D, cfg.GrayProb, rand.New(rand.NewPCG(uint64(n), 2)))
			}
		})
	}
}
