// Package gen constructs dual graph network instances: random geometric
// networks with a gray zone of unreliable links, regular topologies for
// targeted tests, and the two-clique bridge network from the paper's
// Section 7 lower bound.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// ErrDisconnected is returned when a random instance cannot be made
// connected within the retry budget.
var ErrDisconnected = errors.New("gen: could not generate a connected reliable graph")

// GeometricConfig parameterizes RandomGeometric.
type GeometricConfig struct {
	// N is the number of nodes (must be > 2).
	N int
	// TargetDegree steers the expected reliable-graph degree by scaling
	// the deployment area. The paper assumes Δ = ω(log n); callers
	// typically pass a multiple of log₂ n.
	TargetDegree float64
	// D is the gray zone constant d ≥ 1: unreliable edges may exist up to
	// this distance. Defaults to 2.
	D float64
	// GrayProb is the probability that a node pair inside the gray zone
	// (distance in (1, D]) receives an unreliable edge. Zero selects the
	// default of 0.5; pass a negative value for a network with no
	// unreliable edges (the classic radio model when combined with G=G').
	GrayProb float64
	// Retries bounds connectivity resampling attempts. Defaults to 50.
	Retries int
}

func (c *GeometricConfig) setDefaults() error {
	if c.N <= 2 {
		return fmt.Errorf("gen: n must exceed 2, got %d", c.N)
	}
	if c.TargetDegree <= 0 {
		c.TargetDegree = 3 * math.Log2(float64(c.N))
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.D < 1 {
		return fmt.Errorf("gen: gray zone d must be >= 1, got %v", c.D)
	}
	switch {
	case c.GrayProb == 0:
		c.GrayProb = 0.5
	case c.GrayProb < 0:
		c.GrayProb = 0
	case c.GrayProb > 1:
		return fmt.Errorf("gen: gray probability must be at most 1, got %v", c.GrayProb)
	}
	if c.Retries <= 0 {
		c.Retries = 50
	}
	return nil
}

// RandomGeometric places N nodes uniformly in a square sized for the target
// degree, connects pairs within distance 1 reliably, and adds unreliable
// edges inside the gray zone with probability GrayProb. It resamples until
// the reliable graph is connected.
func RandomGeometric(cfg GeometricConfig, rng *rand.Rand) (*dualgraph.Network, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	side := sideFor(cfg)
	for try := 0; try < cfg.Retries; try++ {
		pts := make([]geom.Point, cfg.N)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		net := assemble(pts, cfg.D, cfg.GrayProb, rng)
		if net.G().Connected() {
			return net, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts (n=%d, target degree %.1f)",
		ErrDisconnected, cfg.Retries, cfg.N, cfg.TargetDegree)
}

// sideFor returns the deployment square's side length: the expected
// unit-disk degree is π·n/L² (ignoring boundary effects); solve for L.
func sideFor(cfg GeometricConfig) float64 {
	side := math.Sqrt(float64(cfg.N) * math.Pi / cfg.TargetDegree)
	if side < 1 {
		side = 1
	}
	return side
}

// assemble builds G and G' from an embedding: reliable edges at distance
// <= 1, gray-zone edges at distance in (1, d] with the given probability.
//
// Pairs are bucketed on a spatial grid of cell size d, so each node only
// examines the candidates in its nine surrounding cells — O(n·Δ) work
// instead of the all-pairs O(n²) sweep (assembleAllPairs, retained as the
// test oracle). The candidates are visited in the exact (u, ascending v > u)
// order of the all-pairs loop and pairs beyond distance d never touch the
// RNG in either implementation, so the gray-probability draws are consumed
// in an identical sequence and the two builds are byte-equivalent.
func assemble(pts []geom.Point, d, grayProb float64, rng *rand.Rand) *dualgraph.Network {
	n := len(pts)
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	d2 := d * d
	grid := geom.NewGrid(pts, d)
	for u := 0; u < n; u++ {
		for _, vv := range grid.After(u) {
			v := int(vv)
			dist2 := pts[u].Dist2(pts[v])
			switch {
			case dist2 <= 1:
				mustAdd(g, u, v)
				mustAdd(gp, u, v)
			case dist2 <= d2 && rng.Float64() < grayProb:
				mustAdd(gp, u, v)
			}
		}
	}
	return dualgraph.New(g.Build(), gp.Build(), pts, d)
}

// assembleAllPairs is the original quadratic edge sweep, kept as the golden
// reference for the grid-bucketed assemble: both must produce identical
// networks from identical RNG states (see TestAssembleMatchesAllPairs).
func assembleAllPairs(pts []geom.Point, d, grayProb float64, rng *rand.Rand) *dualgraph.Network {
	n := len(pts)
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	d2 := d * d
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dist2 := pts[u].Dist2(pts[v])
			switch {
			case dist2 <= 1:
				mustAdd(g, u, v)
				mustAdd(gp, u, v)
			case dist2 <= d2 && rng.Float64() < grayProb:
				mustAdd(gp, u, v)
			}
		}
	}
	return dualgraph.New(g.Build(), gp.Build(), pts, d)
}

// mustAdd inserts an edge that is valid by construction.
func mustAdd(g *graph.Builder, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		// Unreachable: endpoints are in range, u < v, and each pair is
		// visited once.
		panic(err)
	}
}

// Line returns a path topology: n nodes at unit spacing, reliable edges
// between consecutive nodes, and unreliable edges skipping one node (at
// distance 2 = d).
func Line(n int) (*dualgraph.Network, error) {
	if n <= 2 {
		return nil, fmt.Errorf("gen: n must exceed 2, got %d", n)
	}
	pts := make([]geom.Point, n)
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i)}
	}
	for i := 0; i+1 < n; i++ {
		mustAdd(g, i, i+1)
		mustAdd(gp, i, i+1)
	}
	for i := 0; i+2 < n; i++ {
		mustAdd(gp, i, i+2)
	}
	return dualgraph.New(g.Build(), gp.Build(), pts, 2), nil
}

// Grid returns a rows×cols lattice with unit spacing: reliable edges between
// horizontal/vertical neighbors and unreliable edges on the diagonals
// (distance √2 ≤ d = 1.5).
func Grid(rows, cols int) (*dualgraph.Network, error) {
	n := rows * cols
	if n <= 2 || rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: grid %dx%d too small", rows, cols)
	}
	pts := make([]geom.Point, n)
	g := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts[at(r, c)] = geom.Point{X: float64(c), Y: float64(r)}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, at(r, c), at(r, c+1))
				mustAdd(gp, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, at(r, c), at(r+1, c))
				mustAdd(gp, at(r, c), at(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				mustAdd(gp, at(r, c), at(r+1, c+1))
			}
			if r+1 < rows && c > 0 {
				mustAdd(gp, at(r, c), at(r+1, c-1))
			}
		}
	}
	return dualgraph.New(g.Build(), gp.Build(), pts, 1.5), nil
}

// Clique returns a complete reliable graph: n nodes packed in a disk of
// radius 0.45, so every pair is within distance 1. G' equals G.
func Clique(n int) (*dualgraph.Network, error) {
	if n <= 2 {
		return nil, fmt.Errorf("gen: n must exceed 2, got %d", n)
	}
	pts := diskPoints(n, geom.Point{}, 0.45)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(b, u, v)
		}
	}
	// G = G': immutable graphs are shared, not cloned.
	g := b.Build()
	return dualgraph.New(g, g, pts, 1), nil
}

// diskPoints spreads n points on concentric rings within radius r of c.
func diskPoints(n int, c geom.Point, r float64) []geom.Point {
	pts := make([]geom.Point, n)
	rings := int(math.Ceil(math.Sqrt(float64(n) / 3)))
	i := 0
	for ring := 0; ring < rings && i < n; ring++ {
		radius := r * float64(ring+1) / float64(rings)
		perRing := (n - i + rings - ring - 1) / (rings - ring)
		for k := 0; k < perRing && i < n; k++ {
			theta := 2 * math.Pi * float64(k) / float64(perRing)
			pts[i] = geom.Point{
				X: c.X + radius*math.Cos(theta),
				Y: c.Y + radius*math.Sin(theta),
			}
			i++
		}
	}
	return pts
}
