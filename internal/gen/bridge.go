package gen

import (
	"fmt"
	"math/rand/v2"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/geom"
	"dualradio/internal/graph"
)

// BridgeMeta describes the two-clique bridge network of the Section 7 lower
// bound proof: G consists of two β-cliques joined by a single bridge edge,
// and G' is the complete graph. Node indices 0..β-1 form clique A and
// β..2β-1 form clique B.
type BridgeMeta struct {
	// Beta is the clique size β; the network has 2β nodes and Δ = β.
	Beta int
	// BridgeA and BridgeB are the node indices of the bridge endpoints in
	// cliques A and B respectively. Their identity is the secret the
	// lower bound argument hides from the algorithm.
	BridgeA int
	BridgeB int
}

// InClique reports which clique node v belongs to: 0 for A, 1 for B.
func (m BridgeMeta) InClique(v int) int {
	if v < m.Beta {
		return 0
	}
	return 1
}

// BridgeCliques builds the lower bound network for clique size beta. The
// bridge endpoints are chosen uniformly at random (the adversary's secret
// targets t_A and t_B). Geometry: clique members sit inside disks of radius
// 0.3 whose centers are 1.8 apart, so intra-clique pairs are within distance
// 1 (forcing reliable edges), cross-clique pairs are at distance >= 1.2
// (never forced), and the gray zone d = 2.5 covers every cross pair.
func BridgeCliques(beta int, rng *rand.Rand) (*dualgraph.Network, BridgeMeta, error) {
	if beta < 2 {
		return nil, BridgeMeta{}, fmt.Errorf("gen: bridge cliques need beta >= 2, got %d", beta)
	}
	n := 2 * beta
	pts := make([]geom.Point, n)
	copy(pts[:beta], diskPoints(beta, geom.Point{X: 0, Y: 0}, 0.3))
	copy(pts[beta:], diskPoints(beta, geom.Point{X: 1.8, Y: 0}, 0.3))

	meta := BridgeMeta{
		Beta:    beta,
		BridgeA: rng.IntN(beta),
		BridgeB: beta + rng.IntN(beta),
	}

	gb := graph.NewBuilder(n)
	gp := graph.NewBuilder(n)
	for u := 0; u < beta; u++ {
		for v := u + 1; v < beta; v++ {
			mustAdd(gb, u, v)
			mustAdd(gb, u+beta, v+beta)
		}
	}
	mustAdd(gb, meta.BridgeA, meta.BridgeB)
	g := gb.Build()
	// G' is complete: every reliable edge plus every cross pair.
	g.Edges(func(u, v int) { mustAdd(gp, u, v) })
	for u := 0; u < beta; u++ {
		for v := beta; v < n; v++ {
			if !g.HasEdge(u, v) {
				mustAdd(gp, u, v)
			}
		}
	}
	return dualgraph.New(g, gp.Build(), pts, 2.5), meta, nil
}

// BridgeDetectors builds the 1-complete detectors from the Lemma 7.2
// simulation: every process in clique A receives the ids of all of A plus
// the id of the bridge endpoint in B, and symmetrically for B. For the true
// bridge endpoints the extra id is a genuine reliable neighbor (0 mistakes);
// for everyone else it is the single permitted mistake. Crucially, all
// members of a clique receive identical sets, so no process can tell whether
// it is the bridge endpoint.
func BridgeDetectors(net *dualgraph.Network, asg *dualgraph.Assignment,
	meta BridgeMeta) *detector.Detector {
	d := detector.NewEmpty(net.N())
	idBridgeA := asg.ID(meta.BridgeA)
	idBridgeB := asg.ID(meta.BridgeB)
	for v := 0; v < net.N(); v++ {
		set := d.Set(v)
		if meta.InClique(v) == 0 {
			for u := 0; u < meta.Beta; u++ {
				if u != v {
					set.Add(asg.ID(u))
				}
			}
			set.Add(idBridgeB)
		} else {
			for u := meta.Beta; u < net.N(); u++ {
				if u != v {
					set.Add(asg.ID(u))
				}
			}
			set.Add(idBridgeA)
		}
	}
	return d
}
