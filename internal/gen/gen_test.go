package gen_test

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dualradio/internal/detector"
	"dualradio/internal/dualgraph"
	"dualradio/internal/gen"
)

func TestRandomGeometricValid(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 1))
		net, err := gen.RandomGeometric(gen.GeometricConfig{N: 80}, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("seed %d: invariants: %v", seed, err)
		}
		if !net.G().Connected() {
			t.Errorf("seed %d: disconnected", seed)
		}
	}
}

func TestRandomGeometricDegreeSteering(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sparse, err := gen.RandomGeometric(gen.GeometricConfig{N: 150, TargetDegree: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := gen.RandomGeometric(gen.GeometricConfig{N: 150, TargetDegree: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dense.G().AvgDegree() <= sparse.G().AvgDegree() {
		t.Errorf("degree steering broken: sparse %.1f dense %.1f",
			sparse.G().AvgDegree(), dense.G().AvgDegree())
	}
}

func TestRandomGeometricNoGray(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	net, err := gen.RandomGeometric(gen.GeometricConfig{N: 60, GrayProb: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.GrayEdges()) != 0 {
		t.Errorf("expected no gray edges, got %d", len(net.GrayEdges()))
	}
}

func TestRandomGeometricRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	cases := []gen.GeometricConfig{
		{N: 2},
		{N: 10, D: 0.5},
		{N: 10, GrayProb: 1.5},
	}
	for i, cfg := range cases {
		if _, err := gen.RandomGeometric(cfg, rng); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestLineShape(t *testing.T) {
	net, err := gen.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.G().M() != 5 || len(net.GrayEdges()) != 4 {
		t.Errorf("edges: G=%d gray=%d", net.G().M(), len(net.GrayEdges()))
	}
	if net.Delta() != 2 {
		t.Errorf("Δ=%d", net.Delta())
	}
	if _, err := gen.Line(2); err == nil {
		t.Error("tiny line accepted")
	}
}

func TestGridShape(t *testing.T) {
	net, err := gen.Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3x4 grid: horizontal 3·3 + vertical 2·4 = 17 reliable edges.
	if net.G().M() != 17 {
		t.Errorf("G edges = %d", net.G().M())
	}
	// Diagonals: 2·3 in each direction = 12 gray edges.
	if len(net.GrayEdges()) != 12 {
		t.Errorf("gray edges = %d", len(net.GrayEdges()))
	}
	if _, err := gen.Grid(1, 2); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestCliqueShape(t *testing.T) {
	net, err := gen.Clique(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.G().M() != 28 || len(net.GrayEdges()) != 0 {
		t.Errorf("clique edges: G=%d gray=%d", net.G().M(), len(net.GrayEdges()))
	}
}

// TestBridgeCliquesShape checks the Lemma 7.2 construction invariants for
// random β and seeds.
func TestBridgeCliquesShape(t *testing.T) {
	f := func(seed uint64, betaRaw uint8) bool {
		beta := 2 + int(betaRaw%30)
		rng := rand.New(rand.NewPCG(seed, 5))
		net, meta, err := gen.BridgeCliques(beta, rng)
		if err != nil {
			return false
		}
		if net.Validate() != nil {
			return false
		}
		// G: two β-cliques plus one bridge.
		wantEdges := beta*(beta-1) + 1
		if net.G().M() != wantEdges {
			return false
		}
		// G' complete.
		n := 2 * beta
		if net.GPrime().M() != n*(n-1)/2 {
			return false
		}
		// Bridge endpoints on opposite sides, adjacent in G.
		if meta.InClique(meta.BridgeA) != 0 || meta.InClique(meta.BridgeB) != 1 {
			return false
		}
		return net.G().HasEdge(meta.BridgeA, meta.BridgeB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBridgeDetectorsAreOneComplete verifies the Lemma 7.2 detector
// construction is exactly 1-complete and uniform within each clique.
func TestBridgeDetectorsAreOneComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	net, meta, err := gen.BridgeCliques(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	asg := dualgraph.RandomAssignment(net.N(), rng)
	det := gen.BridgeDetectors(net, asg, meta)
	if err := det.Verify(net, asg, 1); err != nil {
		t.Fatal(err)
	}
	// All of clique A shares one set shape: A's ids minus self, plus the
	// id of B's bridge endpoint.
	idB := asg.ID(meta.BridgeB)
	for v := 0; v < meta.Beta; v++ {
		set := det.Set(v)
		if !set.Contains(idB) {
			t.Errorf("node %d missing bridge candidate id", v)
		}
		if set.Len() != meta.Beta {
			t.Errorf("node %d set size %d, want β=%d", v, set.Len(), meta.Beta)
		}
	}
	// Mistake counts: exactly one mistake for non-endpoints, zero for the
	// endpoint.
	mistakes := det.MistakeCount(net, asg)
	for v := 0; v < net.N(); v++ {
		want := 1
		if v == meta.BridgeA || v == meta.BridgeB {
			want = 0
		}
		if mistakes[v] != want {
			t.Errorf("node %d has %d mistakes, want %d", v, mistakes[v], want)
		}
	}
	// H must equal G: the extra candidate ids are not mutual.
	h := detector.BuildH(net, asg, det)
	if h.M() != net.G().M() {
		t.Errorf("H has %d edges, G has %d — the hidden-bridge property is broken",
			h.M(), net.G().M())
	}
}

func TestBridgeCliquesRejectsTinyBeta(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, _, err := gen.BridgeCliques(1, rng); err == nil {
		t.Error("beta=1 accepted")
	}
}

func TestDisconnectedError(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	// Extremely sparse: 200 nodes at target degree ~0.01 cannot connect.
	_, err := gen.RandomGeometric(gen.GeometricConfig{
		N: 200, TargetDegree: 0.01, Retries: 2,
	}, rng)
	if !errors.Is(err, gen.ErrDisconnected) {
		t.Errorf("want ErrDisconnected, got %v", err)
	}
}
