// Package routing quantifies the paper's motivation for the CCDS (Section
// 1): a connected dominating set with constant degree serves as a routing
// backbone that moves information through the network with far fewer
// transmissions than naive flooding. The package compares broadcast by
// full flooding against broadcast relayed only by backbone members.
package routing

import (
	"errors"

	"dualradio/internal/graph"
)

// ErrNotDominating is returned when the supposed backbone fails to cover
// the network, so backbone broadcast cannot reach every node.
var ErrNotDominating = errors.New("routing: backbone does not dominate the graph")

// Broadcast summarizes one network-wide dissemination.
type Broadcast struct {
	// Transmissions is the number of nodes that relayed the message.
	Transmissions int
	// Latency is the number of hops until the last node received it.
	Latency int
	// Reached is the number of nodes that received the message.
	Reached int
}

// Flood disseminates from src with every node retransmitting once: the
// baseline strategy. Latency is the eccentricity of src.
func Flood(g *graph.Graph, src int) (Broadcast, error) {
	if src < 0 || src >= g.N() {
		return Broadcast{}, errors.New("routing: source out of range")
	}
	dist := g.BFS(src)
	b := Broadcast{}
	for _, d := range dist {
		if d < 0 {
			continue
		}
		b.Reached++
		if d > b.Latency {
			b.Latency = d
		}
	}
	// Every reached node except the leaves at maximum distance relays; in
	// classic flooding every node transmits once upon first reception.
	b.Transmissions = b.Reached
	return b, nil
}

// Backbone disseminates from src with only backbone members (and the source
// itself) relaying. Every node must be the source, a member, or adjacent to
// a member for the broadcast to cover the graph.
func Backbone(g *graph.Graph, member []bool, src int) (Broadcast, error) {
	if src < 0 || src >= g.N() {
		return Broadcast{}, errors.New("routing: source out of range")
	}
	if len(member) != g.N() {
		return Broadcast{}, errors.New("routing: membership slice size mismatch")
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	b := Broadcast{Reached: 1, Transmissions: 1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			wi := int(w)
			if dist[wi] >= 0 {
				continue
			}
			dist[wi] = dist[v] + 1
			b.Reached++
			if dist[wi] > b.Latency {
				b.Latency = dist[wi]
			}
			// Only backbone members relay further.
			if member[wi] {
				b.Transmissions++
				queue = append(queue, wi)
			}
		}
	}
	if b.Reached != g.N() {
		return b, ErrNotDominating
	}
	return b, nil
}

// Compare runs both strategies from the same source and returns
// (flood, backbone).
func Compare(g *graph.Graph, member []bool, src int) (Broadcast, Broadcast, error) {
	f, err := Flood(g, src)
	if err != nil {
		return Broadcast{}, Broadcast{}, err
	}
	bb, err := Backbone(g, member, src)
	if err != nil {
		return f, bb, err
	}
	return f, bb, nil
}
