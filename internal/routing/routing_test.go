package routing_test

import (
	"errors"
	"testing"

	"dualradio/internal/graph"
	"dualradio/internal/routing"
)

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g.Build()
}

func TestFlood(t *testing.T) {
	g := pathGraph(t, 5)
	b, err := routing.Flood(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reached != 5 || b.Transmissions != 5 || b.Latency != 4 {
		t.Errorf("flood = %+v", b)
	}
	if _, err := routing.Flood(g, 9); err == nil {
		t.Error("bad source accepted")
	}
}

func TestBackboneCoversWithFewerTransmissions(t *testing.T) {
	g := pathGraph(t, 7)
	// Backbone: the interior path nodes 1..5.
	member := []bool{false, true, true, true, true, true, false}
	flood, back, err := routing.Compare(g, member, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reached != 7 {
		t.Errorf("backbone reached %d", back.Reached)
	}
	if back.Transmissions >= flood.Transmissions {
		t.Errorf("backbone %d tx vs flood %d tx", back.Transmissions, flood.Transmissions)
	}
}

func TestBackboneDetectsNonDominating(t *testing.T) {
	g := pathGraph(t, 6)
	// Only node 1 relays: node 4,5 unreachable.
	member := []bool{false, true, false, false, false, false}
	_, err := routing.Backbone(g, member, 0)
	if !errors.Is(err, routing.ErrNotDominating) {
		t.Errorf("want ErrNotDominating, got %v", err)
	}
}

func TestBackboneValidation(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := routing.Backbone(g, []bool{true}, 0); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := routing.Backbone(g, make([]bool, 3), -1); err == nil {
		t.Error("bad source accepted")
	}
}

// TestStarTopologySaving: on a star, the backbone is just the hub — n-1
// fewer transmissions than flooding.
func TestStarTopologySaving(t *testing.T) {
	n := 10
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	member := make([]bool, n)
	member[0] = true
	flood, back, err := routing.Compare(g, member, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.Transmissions != 2 { // leaf source + hub
		t.Errorf("backbone tx = %d", back.Transmissions)
	}
	if flood.Transmissions != n {
		t.Errorf("flood tx = %d", flood.Transmissions)
	}
	if back.Latency != 2 {
		t.Errorf("backbone latency = %d", back.Latency)
	}
}
